//! Ablation: which set layout should back Bron–Kerbosch's P/X sets at
//! which graph density? (The design choice DESIGN.md §5.2 calls out;
//! the paper picks roaring bitmaps on million-vertex graphs.)
//!
//! The sweep is driven by the unified kernel API: the `bk` kernel
//! declares its `layout` parameter's admissible values in its
//! [`ParamSpec`](gms_platform::kernel::ParamSpec) schema, and this binary enumerates that schema —
//! registering a new set layout automatically adds a column here.
//! The instrumented `counting` layout is skipped (it measures the
//! sorted layout, with counter overhead on top).
//!
//! Expected shape at laptop scale (n < 65536): sorted u32 arrays and
//! roaring track each other (roaring's chunks stay in sorted-u16
//! array form below 4096 entries, so it cannot engage its bitmap
//! containers — its advantage needs n ≫ 65536 or dense chunks, which
//! the `set_ops` criterion bench demonstrates directly); dense
//! bitvectors pull ahead as density grows (word-parallel ops over a
//! small universe); hash sets trail throughout.

use gms_platform::kernel::{Params, Registry};

fn main() {
    let graphs = [
        ("sparse(er-1500-0.02)", gms_gen::gnp(1500, 0.02, 1)),
        ("medium(er-800-0.10)", gms_gen::gnp(800, 0.10, 1)),
        ("dense(er-500-0.25)", gms_gen::gnp(500, 0.25, 1)),
    ];
    let registry = Registry::with_builtins();
    let bk = registry.get("bk").expect("bk is registered");
    let layouts: Vec<&str> = bk
        .params()
        .iter()
        .find(|spec| spec.name == "layout")
        .expect("bk declares a layout parameter")
        .choices
        .iter()
        .copied()
        .filter(|&layout| layout != "counting")
        .collect();

    println!("graph,layout,cliques,mine_s");
    for (name, graph) in &graphs {
        let runs: Vec<(&str, u64, f64)> = layouts
            .iter()
            .map(|&layout| {
                let params = Params::new()
                    .with("layout", layout)
                    .with("ordering", "degeneracy");
                let outcome = registry.run("bk", graph, &params).expect("valid layout");
                (
                    layout,
                    outcome.patterns,
                    outcome.timings.kernel.as_secs_f64(),
                )
            })
            .collect();
        let counts: Vec<u64> = runs.iter().map(|r| r.1).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "layouts disagree");
        for (layout, cliques, secs) in runs {
            println!("{name},{layout},{cliques},{secs:.4}");
        }
    }
}
