//! Ablation: which set layout should back Bron–Kerbosch's P/X sets at
//! which graph density? (The design choice DESIGN.md §5.2 calls out;
//! the paper picks roaring bitmaps on million-vertex graphs.)
//!
//! Expected shape at laptop scale (n < 65536): sorted u32 arrays and
//! roaring track each other (roaring's chunks stay in sorted-u16
//! array form below 4096 entries, so it cannot engage its bitmap
//! containers — its advantage needs n ≫ 65536 or dense chunks, which
//! the `set_ops` criterion bench demonstrates directly); dense
//! bitvectors pull ahead as density grows (word-parallel ops over a
//! small universe); hash sets trail throughout.

use gms_core::{DenseBitSet, HashVertexSet, RoaringSet, SortedVecSet};
use gms_order::OrderingKind;
use gms_pattern::{bron_kerbosch, BkConfig, SubgraphMode};

fn main() {
    let graphs = [
        ("sparse(er-1500-0.02)", gms_gen::gnp(1500, 0.02, 1)),
        ("medium(er-800-0.10)", gms_gen::gnp(800, 0.10, 1)),
        ("dense(er-500-0.25)", gms_gen::gnp(500, 0.25, 1)),
    ];
    let config = BkConfig {
        ordering: OrderingKind::Degeneracy,
        subgraph: SubgraphMode::None,
        collect: false,
        ..BkConfig::default()
    };
    println!("graph,layout,cliques,mine_s");
    for (name, graph) in &graphs {
        let runs: Vec<(&str, u64, f64)> = vec![
            run::<SortedVecSet>("sorted", graph, &config),
            run::<RoaringSet>("roaring", graph, &config),
            run::<DenseBitSet>("dense", graph, &config),
            run::<HashVertexSet>("hash", graph, &config),
        ];
        let counts: Vec<u64> = runs.iter().map(|r| r.1).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "layouts disagree");
        for (layout, cliques, secs) in runs {
            println!("{name},{layout},{cliques},{secs:.4}");
        }
    }
}

fn run<S: gms_core::Set>(
    label: &'static str,
    graph: &gms_core::CsrGraph,
    config: &BkConfig,
) -> (&'static str, u64, f64) {
    let outcome = bron_kerbosch::<S>(graph, config);
    (label, outcome.clique_count, outcome.mine.as_secs_f64())
}
