//! Table 7: the dataset gallery characterized by the paper's
//! structural features — n, m, m/n, maximum degree, triangle count T,
//! T/n, and the maximum per-vertex triangle count T̂ (the T-skew
//! signal). Mirrors the archetypes of the paper's table: graphs picked
//! to stress sparsity, degree skew, triangle skew, and origin effects.

use gms_bench::{gallery, scale_from_env};
use gms_platform::GraphStats;

fn main() {
    let datasets = gallery(scale_from_env());
    println!("{}", GraphStats::header());
    for dataset in &datasets {
        let stats = GraphStats::compute(dataset.name, &dataset.graph);
        println!("{}  skew={:.1}", stats.row(), stats.t_skew());
    }
}
