//! `gms-client`: the load generator for `gms-serve`, and the CI
//! serving smoke. Drives a server through five phases and writes a
//! latency/throughput report to `BENCH_serve.json`:
//!
//! 1. **setup** — load two synthetic graphs (inline edge lists over
//!    the wire) and probe the typed error surface with a malformed
//!    request;
//! 2. **burst** — fire simultaneous distinct heavy requests from
//!    many connections to exercise admission control until at least
//!    one `queue-full` rejection is observed;
//! 3. **open loop** — dispatch a mixed kernel stream (with deliberate
//!    duplicates) on a fixed arrival schedule over a connection pool,
//!    recording per-request latency percentiles and throughput;
//! 4. **HTTP lane** — the same server through the `/v1` gateway: a
//!    GET + POST mix on per-request connections plus one chunked
//!    streaming listing, with its own latency percentiles (this is
//!    also the CI HTTP smoke — no curl required);
//! 5. **verify** — read the stats endpoint and assert the run proved
//!    what CI needs: ≥1 queue-full rejection, ≥1 cross-session cache
//!    hit, the malformed request answered with a typed error — then
//!    shut the server down gracefully.
//!
//! Standalone it starts an in-process server; with `GMS_SERVE_ADDR`
//! set it drives an external one (CI starts the `gms-serve` binary
//! on an ephemeral port first), and `GMS_SERVE_SHUTDOWN=1` makes it
//! send the final `shutdown` op so the external process exits.
//!
//! ```sh
//! cargo run --release -p gms-bench --bin bench_serve
//! ```

use gms_serve::{Client, Json, ServeConfig, Server, ServerHandle};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Queue bound used for the in-process server: small enough that the
/// burst phase reliably trips admission control with two workers.
const QUEUE_CAPACITY: usize = 2;

fn edge_list(graph: &gms_core::CsrGraph) -> String {
    let mut bytes = Vec::new();
    gms_graph::io::write_edge_list(graph, &mut bytes).unwrap();
    String::from_utf8(bytes).unwrap()
}

fn assert_ok(response: &Json, what: &str) {
    assert_eq!(
        response.get("ok"),
        Some(&Json::Bool(true)),
        "{what} failed: {}",
        response.render()
    );
}

fn error_code<'a>(response: &'a Json, what: &str) -> &'a str {
    response
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("{what}: expected a typed error, got {}", response.render()))
}

/// A tiny reusable connection pool: open-loop arrivals pop an idle
/// connection or dial a new one, so concurrency follows the offered
/// load instead of being fixed up front.
struct ConnPool {
    addr: std::net::SocketAddr,
    idle: Mutex<Vec<Client>>,
}

impl ConnPool {
    fn take(&self) -> Client {
        if let Some(client) = self.idle.lock().unwrap().pop() {
            return client;
        }
        Client::connect(self.addr).expect("dial server")
    }

    fn put(&self, client: Client) {
        self.idle.lock().unwrap().push(client);
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn main() {
    let external = std::env::var("GMS_SERVE_ADDR").ok();
    let in_process: Option<ServerHandle> = if external.is_none() {
        Some(
            Server::start(ServeConfig {
                workers: 2,
                queue_capacity: QUEUE_CAPACITY,
                ..ServeConfig::default()
            })
            .expect("start in-process server"),
        )
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&external, &in_process) {
        (Some(text), _) => text.parse().expect("GMS_SERVE_ADDR must be host:port"),
        (None, Some(handle)) => handle.addr(),
        _ => unreachable!(),
    };
    let mut control = Client::connect(addr).expect("connect to server");
    let health = control.health().expect("health probe");
    assert_ok(&health, "health");
    let queue_capacity = health
        .get("queue_capacity")
        .and_then(Json::as_i64)
        .expect("health reports queue capacity");

    // ---- Phase 1: setup -------------------------------------------------
    let clique_rich = gms_gen::planted_cliques(500, 0.01, 3, 8, 42).0;
    let mesh = gms_gen::kronecker_default(9, 6, 5);
    assert_ok(
        &control
            .load_inline("clique-rich", "edge-list", &edge_list(&clique_rich))
            .unwrap(),
        "load clique-rich",
    );
    assert_ok(
        &control
            .load_inline("mesh", "edge-list", &edge_list(&mesh))
            .unwrap(),
        "load mesh",
    );

    // One deliberately malformed request: the server must answer a
    // typed error on the same connection, which stays usable.
    let malformed = control.request_raw("{\"op\": nonsense").unwrap();
    assert_eq!(
        error_code(&malformed, "malformed request"),
        "bad-json",
        "malformed request must be answered with a typed error"
    );
    assert_ok(&control.health().unwrap(), "connection survives bad-json");

    // ---- Phase 2: burst (admission control) -----------------------------
    // Simultaneous distinct heavy requests from more connections than
    // worker slots + queue depth: admission control must reject some.
    let mut queue_full_seen = 0usize;
    let mut burst_rounds = 0usize;
    for round in 0..6 {
        burst_rounds = round + 1;
        let n = (queue_capacity as usize + 2) * 3;
        let barrier = Arc::new(Barrier::new(n));
        let threads: Vec<_> = (0..n)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("burst dial");
                    barrier.wait();
                    let response = client
                        .run(
                            "bk",
                            "clique-rich",
                            &[("par-depth", Json::Int((round * n + i) as i64 + 1))],
                        )
                        .unwrap();
                    response
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str)
                        == Some("queue-full")
                })
            })
            .collect();
        queue_full_seen += threads
            .into_iter()
            .map(|t| t.join().unwrap())
            .filter(|&rejected| rejected)
            .count();
        if queue_full_seen > 0 {
            break;
        }
    }
    assert!(
        queue_full_seen > 0,
        "burst phase never tripped admission control"
    );

    // ---- Phase 3: open-loop load ----------------------------------------
    // Fixed arrival schedule: requests are dispatched on time whether
    // or not earlier ones finished (open loop), each on a pooled
    // connection. The mix repeats every 8 requests, so 7/8 of the
    // steady state are cache hits landing on both workers.
    let requests_total = 240usize;
    let rate_per_sec = 300.0;
    type MixEntry = (&'static str, &'static str, Vec<(&'static str, Json)>);
    let mix: Vec<MixEntry> = vec![
        ("triangle-count", "clique-rich", vec![]),
        ("k-clique", "clique-rich", vec![("k", Json::Int(4))]),
        ("order-degree", "mesh", vec![]),
        ("triangle-count", "mesh", vec![]),
        ("k-clique", "clique-rich", vec![("k", Json::Int(4))]),
        ("coloring", "mesh", vec![]),
        ("triangle-count", "clique-rich", vec![]),
        ("similarity", "mesh", vec![]),
    ];
    let pool = Arc::new(ConnPool {
        addr,
        idle: Mutex::new(Vec::new()),
    });
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let open_loop_rejected = Arc::new(Mutex::new(0usize));
    let started = Instant::now();
    let interval = Duration::from_secs_f64(1.0 / rate_per_sec);
    let mut workers = Vec::new();
    for i in 0..requests_total {
        let due = started + interval * i as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let (kernel, graph, params) = mix[i % mix.len()].clone();
        let (pool, latencies, rejected) = (
            Arc::clone(&pool),
            Arc::clone(&latencies),
            Arc::clone(&open_loop_rejected),
        );
        workers.push(std::thread::spawn(move || {
            let mut client = pool.take();
            let sent = Instant::now();
            let response = client.run(kernel, graph, &params).unwrap();
            let elapsed_ms = sent.elapsed().as_secs_f64() * 1e3;
            if response.get("ok") == Some(&Json::Bool(true)) {
                latencies.lock().unwrap().push(elapsed_ms);
            } else {
                assert_eq!(
                    response
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str),
                    Some("queue-full"),
                    "only backpressure may fail the open loop: {}",
                    response.render()
                );
                *rejected.lock().unwrap() += 1;
            }
            pool.put(client);
        }));
    }
    for worker in workers {
        worker.join().unwrap();
    }
    let wall = started.elapsed();
    let mut latencies = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let open_loop_rejected = *open_loop_rejected.lock().unwrap();
    let completed = latencies.len();

    // ---- Phase 4: HTTP lane ---------------------------------------------
    // The same server through the `/v1` gateway: a GET + POST mix on
    // per-request connections (connection cost included in the
    // percentiles), plus one chunked streaming listing. This doubles
    // as the CI HTTP smoke — no curl required.
    let http = gms_serve::HttpClient::new(addr).expect("dial gateway");
    let http_total = 60usize;
    let mut http_latencies: Vec<f64> = Vec::new();
    let mut http_rejected = 0usize;
    for i in 0..http_total {
        let sent = Instant::now();
        let response = match i % 3 {
            0 => http.get("/v1/health"),
            1 => http.run("clique-rich", "triangle-count", &[]),
            _ => http.run("mesh", "coloring", &[]),
        }
        .expect("http round trip");
        let elapsed_ms = sent.elapsed().as_secs_f64() * 1e3;
        if response.status == 200 {
            http_latencies.push(elapsed_ms);
        } else {
            assert_eq!(
                response.status, 503,
                "only backpressure may fail the HTTP lane: {} {}",
                response.status, response.body
            );
            http_rejected += 1;
        }
    }
    let streamed = http
        .run_streaming("clique-rich", "bk", &[("collect", Json::Bool(true))], 16)
        .expect("streamed run");
    assert_eq!(streamed.status, 200, "streaming lane: {}", streamed.body);
    assert!(
        streamed.chunks >= 3,
        "a clique listing streams as meta + pages + trailer, got {} chunks",
        streamed.chunks
    );
    http_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let http_completed = http_latencies.len();

    // ---- Phase 5: verify + report ---------------------------------------
    let stats = control.stats().expect("stats endpoint");
    assert_ok(&stats, "stats");
    let cache = stats.get("cache").expect("cache stats");
    let server = stats.get("server").expect("server stats");
    let get = |obj: &Json, key: &str| obj.get(key).and_then(Json::as_i64).unwrap_or(0);
    assert!(
        get(server, "rejected") as usize >= queue_full_seen,
        "server counted every rejection"
    );
    assert!(get(server, "malformed") >= 1, "typed-error probe counted");
    assert!(get(cache, "hits") >= 1, "duplicate requests must hit");
    assert!(
        get(cache, "cross_hits") >= 1,
        "≥1 hit must cross worker sessions: {}",
        stats.render()
    );
    assert!(
        get(server, "http_requests") as usize >= http_total,
        "the gateway counted the HTTP lane"
    );

    let mean = if completed > 0 {
        latencies.iter().sum::<f64>() / completed as f64
    } else {
        0.0
    };
    let report = Json::object([
        ("bench", Json::from("serve")),
        (
            "server",
            Json::from(if external.is_some() {
                "external"
            } else {
                "in-process"
            }),
        ),
        ("workers", stats_path(&stats, "server", "workers")),
        ("queue_capacity", Json::from(queue_capacity)),
        ("burst_rounds", Json::from(burst_rounds)),
        (
            "queue_full_rejections",
            Json::from(queue_full_seen + open_loop_rejected),
        ),
        (
            "open_loop",
            Json::object([
                ("offered", Json::from(requests_total)),
                ("completed", Json::from(completed)),
                ("rejected", Json::from(open_loop_rejected)),
                ("offered_rate_rps", Json::from(rate_per_sec)),
                (
                    "throughput_rps",
                    Json::from(completed as f64 / wall.as_secs_f64()),
                ),
                ("wall_ms", Json::from(wall.as_secs_f64() * 1e3)),
                (
                    "latency_ms",
                    Json::object([
                        ("p50", Json::from(percentile(&latencies, 50.0))),
                        ("p90", Json::from(percentile(&latencies, 90.0))),
                        ("p99", Json::from(percentile(&latencies, 99.0))),
                        ("max", Json::from(percentile(&latencies, 100.0))),
                        ("mean", Json::from(mean)),
                    ]),
                ),
            ]),
        ),
        (
            "http",
            Json::object([
                ("offered", Json::from(http_total)),
                ("completed", Json::from(http_completed)),
                ("rejected", Json::from(http_rejected)),
                ("streamed_chunks", Json::from(streamed.chunks)),
                (
                    "latency_ms",
                    Json::object([
                        ("p50", Json::from(percentile(&http_latencies, 50.0))),
                        ("p90", Json::from(percentile(&http_latencies, 90.0))),
                        ("p99", Json::from(percentile(&http_latencies, 99.0))),
                        ("max", Json::from(percentile(&http_latencies, 100.0))),
                    ]),
                ),
            ]),
        ),
        ("cache", cache.clone()),
    ]);
    let rendered = report.render();
    std::fs::write("BENCH_serve.json", format!("{rendered}\n")).expect("write BENCH_serve.json");
    println!("{rendered}");

    // Graceful shutdown: always for the in-process server; for an
    // external one only when CI asks (it owns the process).
    let drive_shutdown =
        in_process.is_some() || std::env::var("GMS_SERVE_SHUTDOWN").as_deref() == Ok("1");
    if drive_shutdown {
        let ack = control.shutdown().expect("shutdown ack");
        assert_eq!(
            ack.get("status").and_then(Json::as_str),
            Some("shutting-down"),
            "graceful shutdown must be acknowledged"
        );
    }
    if let Some(handle) = in_process {
        handle.join();
    }
    eprintln!(
        "bench_serve: {completed}/{requests_total} served, {} rejected, p50 {:.2} ms, p99 {:.2} ms{}",
        queue_full_seen + open_loop_rejected,
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
        if drive_shutdown { ", server shut down cleanly" } else { "" },
    );
}

fn stats_path(stats: &Json, section: &str, key: &str) -> Json {
    stats
        .get(section)
        .and_then(|s| s.get(key))
        .cloned()
        .unwrap_or(Json::Null)
}
