//! Tables 5 & 6: empirical scaling-shape checks of the concurrency
//! analysis. The bounds themselves are proofs; what is measurable is
//! their *shape*:
//!
//! * ADG needs O(log n) rounds (Lemma 7.1) — rounds must grow
//!   logarithmically as n doubles;
//! * the ADG later-neighbor bound stays within (2+ε)·d of the exact
//!   degeneracy (the factor driving the BK-ADG work bound
//!   O(dm·3^((2+ε)d/3)));
//! * the edge-parallel k-clique driver exposes more parallelism than
//!   the node-parallel one (depth column of Table 5), visible as
//!   better thread scaling.

use gms_bench::print_csv;
use gms_core::Graph;
use gms_order::{approx_degeneracy_order, degeneracy_order, OrderingKind};
use gms_pattern::{k_clique_count, KcConfig, KcParallel};
use gms_platform::run_scaling;

fn main() {
    // Part 1: ADG round growth vs n (expected: ~ log n).
    let mut rows = Vec::new();
    for scale in [9u32, 10, 11, 12, 13] {
        let graph = gms_gen::kronecker_default(scale, 8, 21);
        let exact = degeneracy_order(&graph);
        let adg = approx_degeneracy_order(&graph, 0.1);
        rows.push(format!(
            "{},{},{},{},{},{:.2}",
            graph.num_vertices(),
            graph.num_edges_undirected(),
            exact.degeneracy,
            adg.rounds,
            adg.out_degree_bound,
            adg.out_degree_bound as f64 / exact.degeneracy.max(1) as f64,
        ));
    }
    print_csv("n,m,degeneracy_d,adg_rounds,adg_bound,bound_over_d", &rows);
    assert_adg_rounds_logarithmic();

    // Part 2: node- vs edge-parallel k-clique thread scaling.
    let graph = gms_gen::planted_cliques(1_500, 0.005, 10, 9, 33).0;
    println!();
    let mut rows = Vec::new();
    for (label, parallel) in [("node", KcParallel::Node), ("edge", KcParallel::Edge)] {
        let config = KcConfig {
            ordering: OrderingKind::Degeneracy,
            parallel,
        };
        let series = run_scaling(&[1, 4], || {
            std::hint::black_box(k_clique_count(&graph, 6, &config).count);
        });
        let speedup = series[0].elapsed.as_secs_f64() / series[1].elapsed.as_secs_f64();
        rows.push(format!(
            "{label},{:.4},{:.4},{:.2}",
            series[0].elapsed.as_secs_f64(),
            series[1].elapsed.as_secs_f64(),
            speedup,
        ));
    }
    print_csv("driver,time_1t_s,time_4t_s,speedup_4t", &rows);
}

fn assert_adg_rounds_logarithmic() {
    // Doubling n must add O(1) rounds, not multiply them.
    let small = gms_gen::kronecker_default(10, 8, 5);
    let large = gms_gen::kronecker_default(13, 8, 5);
    let r_small = approx_degeneracy_order(&small, 0.1).rounds;
    let r_large = approx_degeneracy_order(&large, 0.1).rounds;
    assert!(
        r_large <= r_small + 16,
        "rounds grew too fast: {r_small} -> {r_large}"
    );
    println!(
        "# ADG rounds: n*8 growth added {} rounds (logarithmic)",
        r_large - r_small
    );
}
