//! Figure 5: k-clique listing runtime for clique sizes on two
//! contrasting graphs (clique-rich ≈ Flickr, moderate ≈ Orkut), with
//! the reordering fraction, for the KC-DEG / KC-DGR / KC-ADG
//! orderings. Paper shape: ADG ≤ DGR in total time (reorder + mine);
//! the reorder fraction of DGR grows with sparsity.

use gms_bench::{print_csv, scale_from_env};
use gms_order::OrderingKind;
use gms_pattern::{k_clique_count, KcConfig, KcParallel};

fn main() {
    let s = scale_from_env();
    let graphs = [
        (
            "clique-rich",
            gms_gen::planted_cliques(1_500 * s, 0.004, 12, 11, 103).0,
        ),
        (
            "social-kron",
            gms_gen::kronecker_default(10 + (s as u32 - 1).min(4), 12, 101),
        ),
    ];
    let orderings = [
        ("KC-DEG", OrderingKind::Degree),
        ("KC-DGR", OrderingKind::Degeneracy),
        ("KC-ADG", OrderingKind::ApproxDegeneracy(0.25)),
    ];
    let mut rows = Vec::new();
    for (name, graph) in &graphs {
        for k in [5usize, 6, 8, 9] {
            for (label, ordering) in orderings {
                let outcome = k_clique_count(
                    graph,
                    k,
                    &KcConfig {
                        ordering,
                        parallel: KcParallel::Edge,
                    },
                );
                let total = outcome.preprocess + outcome.mine;
                rows.push(format!(
                    "{name},{k},{label},{},{:.4},{:.4},{:.3}",
                    outcome.count,
                    outcome.preprocess.as_secs_f64(),
                    outcome.mine.as_secs_f64(),
                    outcome.preprocess.as_secs_f64() / total.as_secs_f64().max(1e-12),
                ));
            }
        }
    }
    print_csv(
        "graph,k,ordering,cliques,preprocess_s,mine_s,reorder_fraction",
        &rows,
    );
}
