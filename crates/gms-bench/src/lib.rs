//! # gms-bench
//!
//! Benchmark harness for GraphMineSuite-rs. One binary per paper
//! figure/table (see DESIGN.md §4 for the full experiment index):
//!
//! ```sh
//! cargo run --release -p gms-bench --bin fig04_bk_speedups
//! cargo run --release -p gms-bench --bin tab07_datasets
//! # ...
//! ```
//!
//! plus criterion microbenches (`cargo bench`). The [`mod@gallery`] module
//! holds the synthetic stand-ins for the Table 7 dataset archetypes.

#![warn(missing_docs)]

pub mod gallery;

pub use gallery::{fig1_subset, gallery, print_csv, Dataset};

/// Scale factor for the figure binaries, read from `GMS_SCALE`
/// (default 1). Raise it on beefier machines to stress the kernels.
/// Garbage values — unparsable *or* zero — fall back to 1, so every
/// bin (including those taking `ilog2` of the scale) stays total.
pub fn scale_from_env() -> usize {
    std::env::var("GMS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}
