//! The Hasenplaugh et al. ordering heuristics for parallel coloring
//! (Table 4: "Hasenplaugh et al.'s (HS)" — vertex prioritization).
//! Each heuristic produces a priority [`Rank`] for the Jones–Plassmann
//! driver; the color count and round count vary with the heuristic,
//! which is exactly the experimentation surface the paper's modularity
//! (③/⑤) exposes.

use gms_core::{CsrGraph, Graph, NodeId};
use gms_graph::Rank;

/// The classical priority heuristics (Hasenplaugh et al., SPAA'14).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColoringOrder {
    /// Largest-degree-first (LF): high-degree vertices color early.
    LargestDegreeFirst,
    /// Smallest-degree-last (SL): priorities from the degeneracy
    /// peeling — vertices peeled last color first; guarantees at most
    /// `d + 1` colors under sequential greedy.
    SmallestDegreeLast,
    /// Largest-log-degree-first (LLF): degrees bucketed by ⌈log₂⌉,
    /// ties broken by ID — fewer priority levels, fewer JP rounds.
    LargestLogDegreeFirst,
    /// Smallest-log-degree-last (SLL): the log-bucketed SL variant.
    SmallestLogDegreeLast,
    /// Seeded pseudo-random priorities (the classic JP baseline).
    Random(u64),
}

impl ColoringOrder {
    /// All deterministic heuristics plus one random seed.
    pub const ALL: [ColoringOrder; 5] = [
        ColoringOrder::LargestDegreeFirst,
        ColoringOrder::SmallestDegreeLast,
        ColoringOrder::LargestLogDegreeFirst,
        ColoringOrder::SmallestLogDegreeLast,
        ColoringOrder::Random(7),
    ];

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            ColoringOrder::LargestDegreeFirst => "LF".into(),
            ColoringOrder::SmallestDegreeLast => "SL".into(),
            ColoringOrder::LargestLogDegreeFirst => "LLF".into(),
            ColoringOrder::SmallestLogDegreeLast => "SLL".into(),
            ColoringOrder::Random(seed) => format!("R({seed})"),
        }
    }

    /// Computes the priority rank (position 0 = highest priority =
    /// colors first).
    pub fn compute(&self, graph: &CsrGraph) -> Rank {
        let n = graph.num_vertices();
        match *self {
            ColoringOrder::LargestDegreeFirst => {
                let mut vertices: Vec<NodeId> = graph.vertices().collect();
                vertices.sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
                Rank::from_order(&vertices)
            }
            ColoringOrder::LargestLogDegreeFirst => {
                let mut vertices: Vec<NodeId> = graph.vertices().collect();
                vertices
                    .sort_unstable_by_key(|&v| (std::cmp::Reverse(log_bucket(graph.degree(v))), v));
                Rank::from_order(&vertices)
            }
            ColoringOrder::SmallestDegreeLast => {
                // Degeneracy peeling order reversed: peeled-last first.
                let peel = gms_order::degeneracy_order(graph).rank;
                let mut order = peel.order();
                order.reverse();
                Rank::from_order(&order)
            }
            ColoringOrder::SmallestLogDegreeLast => {
                // Batched peeling: every round removes the whole
                // minimum log-degree bucket (the coarse SL variant with
                // O(log Δ · log n)-ish round structure).
                let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v as NodeId)).collect();
                let mut removed = vec![false; n];
                let mut order: Vec<NodeId> = Vec::with_capacity(n);
                while order.len() < n {
                    let min_bucket = (0..n)
                        .filter(|&v| !removed[v])
                        .map(|v| log_bucket(degree[v]))
                        .min()
                        .expect("vertices remain");
                    let batch: Vec<NodeId> = (0..n as NodeId)
                        .filter(|&v| {
                            !removed[v as usize] && log_bucket(degree[v as usize]) == min_bucket
                        })
                        .collect();
                    for &v in &batch {
                        removed[v as usize] = true;
                    }
                    for &v in &batch {
                        for w in graph.neighbors(v) {
                            if !removed[w as usize] {
                                degree[w as usize] -= 1;
                            }
                        }
                    }
                    order.extend(batch);
                }
                order.reverse();
                Rank::from_order(&order)
            }
            ColoringOrder::Random(seed) => gms_order::random_order(n, seed),
        }
    }
}

/// ⌈log₂(d + 1)⌉ bucket of a degree.
fn log_bucket(degree: usize) -> u32 {
    usize::BITS - degree.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{jones_plassmann, verify_coloring};

    #[test]
    fn every_heuristic_yields_a_proper_coloring() {
        let g = gms_gen::kronecker_default(9, 8, 3);
        for order in ColoringOrder::ALL {
            let rank = order.compute(&g);
            let (colors, rounds) = jones_plassmann(&g, &rank);
            let used = verify_coloring(&g, &colors)
                .unwrap_or_else(|e| panic!("{}: conflict {e:?}", order.label()));
            assert!(used <= g.max_degree() + 1, "{}", order.label());
            assert!(rounds >= 1);
        }
    }

    #[test]
    fn sl_respects_the_degeneracy_bound() {
        let g = gms_gen::gnp(250, 0.05, 6);
        let d = gms_order::degeneracy_order(&g).degeneracy;
        let rank = ColoringOrder::SmallestDegreeLast.compute(&g);
        // Sequential greedy in SL order is the classical d+1 coloring.
        let colors = crate::coloring::greedy_coloring(&g, &rank);
        let used = verify_coloring(&g, &colors).unwrap();
        assert!(used <= d + 1, "SL greedy used {used} > d+1 = {}", d + 1);
    }

    #[test]
    fn log_bucketing_coarsens_priorities() {
        assert_eq!(log_bucket(0), 0);
        assert_eq!(log_bucket(1), 1);
        assert_eq!(log_bucket(2), 2);
        assert_eq!(log_bucket(3), 2);
        assert_eq!(log_bucket(4), 3);
        assert_eq!(log_bucket(1000), 10);
    }

    #[test]
    fn lf_prioritizes_hubs() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]);
        let rank = ColoringOrder::LargestDegreeFirst.compute(&g);
        assert_eq!(rank.rank_of(0), 0, "the degree-3 hub goes first");
    }
}
