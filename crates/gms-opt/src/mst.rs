//! Borůvka's minimum spanning tree / forest (Table 4: the paper's
//! representative low-complexity optimization problem). Each round,
//! every component selects its lightest incident edge in parallel;
//! components merge along the selected edges, halving the component
//! count, so there are O(log n) rounds.

use gms_core::NodeId;
use rayon::prelude::*;

/// A weighted undirected edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedEdge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Edge weight.
    pub weight: f64,
}

/// Union-find with path compression (sequential merge step).
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = v;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra.max(rb) as usize] = ra.min(rb);
        true
    }
}

/// Computes a minimum spanning forest with Borůvka's algorithm.
/// Returns the indices (into `edges`) of the forest edges. Ties are
/// broken by `(weight, index)`, making the result deterministic even
/// with equal weights.
pub fn boruvka(n: usize, edges: &[WeightedEdge]) -> Vec<usize> {
    let mut uf = UnionFind::new(n);
    let mut forest: Vec<usize> = Vec::with_capacity(n.saturating_sub(1));
    let mut components = n;
    loop {
        // Per-component lightest incident edge (parallel reduction by
        // chunk, then a sequential fold over candidates).
        let roots: Vec<u32> = {
            let mut uf_snapshot = UnionFind {
                parent: uf.parent.clone(),
            };
            (0..n as u32).map(|v| uf_snapshot.find(v)).collect()
        };
        let best_per_chunk: Vec<Vec<Option<usize>>> = edges
            .par_chunks(4096)
            .enumerate()
            .map(|(chunk_idx, chunk)| {
                let mut best: Vec<Option<usize>> = vec![None; n];
                for (off, e) in chunk.iter().enumerate() {
                    let idx = chunk_idx * 4096 + off;
                    let (ru, rv) = (roots[e.u as usize], roots[e.v as usize]);
                    if ru == rv {
                        continue;
                    }
                    for r in [ru, rv] {
                        match best[r as usize] {
                            Some(prev) if (edges[prev].weight, prev) <= (e.weight, idx) => {}
                            _ => best[r as usize] = Some(idx),
                        }
                    }
                }
                best
            })
            .collect();
        let mut best: Vec<Option<usize>> = vec![None; n];
        for chunk_best in best_per_chunk {
            for (r, candidate) in chunk_best.into_iter().enumerate() {
                if let Some(idx) = candidate {
                    match best[r] {
                        Some(prev) if (edges[prev].weight, prev) <= (edges[idx].weight, idx) => {}
                        _ => best[r] = Some(idx),
                    }
                }
            }
        }

        let mut merged_any = false;
        for idx in best.into_iter().flatten() {
            let e = &edges[idx];
            if uf.union(e.u, e.v) {
                forest.push(idx);
                components -= 1;
                merged_any = true;
            }
        }
        if !merged_any || components == 1 {
            break;
        }
    }
    forest.sort_unstable();
    forest
}

/// Total weight of a set of edge indices.
pub fn forest_weight(edges: &[WeightedEdge], indices: &[usize]) -> f64 {
    indices.iter().map(|&i| edges[i].weight).sum()
}

/// Kruskal's algorithm — the sequential oracle for tests.
pub fn kruskal(n: usize, edges: &[WeightedEdge]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by(|&a, &b| {
        edges[a]
            .weight
            .partial_cmp(&edges[b].weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut uf = UnionFind::new(n);
    let mut forest = Vec::new();
    for idx in order {
        if uf.union(edges[idx].u, edges[idx].v) {
            forest.push(idx);
        }
    }
    forest.sort_unstable();
    forest
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_weighted(n: usize, p: f64, seed: u64) -> Vec<WeightedEdge> {
        let g = gms_gen::gnp(n, p, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        g.edges_undirected()
            .map(|(u, v)| WeightedEdge {
                u,
                v,
                weight: rng.gen_range(0.0..100.0),
            })
            .collect()
    }

    #[test]
    fn matches_kruskal_weight_on_random_graphs() {
        for seed in 0..5 {
            let edges = random_weighted(100, 0.08, seed);
            let b = boruvka(100, &edges);
            let k = kruskal(100, &edges);
            assert_eq!(b.len(), k.len(), "forest sizes, seed {seed}");
            let wb = forest_weight(&edges, &b);
            let wk = forest_weight(&edges, &k);
            assert!((wb - wk).abs() < 1e-9, "weights {wb} vs {wk}, seed {seed}");
        }
    }

    #[test]
    fn known_tiny_mst() {
        // Square with diagonal: MST = three cheapest non-cyclic edges.
        let edges = vec![
            WeightedEdge {
                u: 0,
                v: 1,
                weight: 1.0,
            },
            WeightedEdge {
                u: 1,
                v: 2,
                weight: 2.0,
            },
            WeightedEdge {
                u: 2,
                v: 3,
                weight: 3.0,
            },
            WeightedEdge {
                u: 3,
                v: 0,
                weight: 4.0,
            },
            WeightedEdge {
                u: 0,
                v: 2,
                weight: 2.5,
            },
        ];
        let mst = boruvka(4, &edges);
        assert_eq!(mst, vec![0, 1, 2]);
        assert_eq!(forest_weight(&edges, &mst), 6.0);
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        let edges = vec![
            WeightedEdge {
                u: 0,
                v: 1,
                weight: 1.0,
            },
            WeightedEdge {
                u: 2,
                v: 3,
                weight: 1.0,
            },
        ];
        let forest = boruvka(5, &edges);
        assert_eq!(forest.len(), 2, "two trees, vertex 4 isolated");
    }

    #[test]
    fn spanning_tree_spans() {
        let edges = random_weighted(60, 0.2, 7);
        let mst = boruvka(60, &edges);
        let mut uf = UnionFind::new(60);
        for &i in &mst {
            uf.union(edges[i].u, edges[i].v);
        }
        let root = uf.find(0);
        assert!((0..60u32).all(|v| uf.find(v) == root), "tree must span");
        assert_eq!(mst.len(), 59);
    }

    #[test]
    fn empty_inputs() {
        assert!(boruvka(0, &[]).is_empty());
        assert!(boruvka(5, &[]).is_empty());
    }
}
