//! Minimum cut via randomized contraction (Karger–Stein, Table 4:
//! the paper's representative "superlinear P problem"). The
//! Karger–Stein refinement contracts down to `n/√2 + 1` vertices,
//! then recurses twice and keeps the better cut, amplifying the
//! success probability to Ω(1/log n) per trial.

use gms_core::{CsrGraph, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A multigraph under contraction: surviving edges with multiplicity 1
/// each (parallel edges listed repeatedly).
#[derive(Clone)]
struct ContractState {
    /// Remaining (endpoint-resolved) edges.
    edges: Vec<(u32, u32)>,
    /// Union-find parents.
    parent: Vec<u32>,
    /// Remaining super-vertex count.
    vertices: usize,
}

impl ContractState {
    fn new(n: usize, edges: Vec<(u32, u32)>) -> Self {
        Self {
            edges,
            parent: (0..n as u32).collect(),
            vertices: n,
        }
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = v;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Contracts random edges until `target` super-vertices remain.
    fn contract_to(&mut self, target: usize, rng: &mut StdRng) {
        while self.vertices > target && !self.edges.is_empty() {
            let pick = rng.gen_range(0..self.edges.len());
            let (u, v) = self.edges[pick];
            let (ru, rv) = (self.find(u), self.find(v));
            if ru == rv {
                self.edges.swap_remove(pick);
                continue;
            }
            self.parent[rv as usize] = ru;
            self.vertices -= 1;
            // Drop self-loops lazily: compact the edge list in place.
            let mut write = 0;
            for read in 0..self.edges.len() {
                let (a, b) = self.edges[read];
                if self.find(a) != self.find(b) {
                    self.edges[write] = (a, b);
                    write += 1;
                }
            }
            self.edges.truncate(write);
        }
    }

    /// Cut value when exactly two super-vertices remain.
    fn cut_value(&self) -> usize {
        self.edges.len()
    }
}

fn karger_stein_rec(state: &mut ContractState, rng: &mut StdRng) -> usize {
    let n = state.vertices;
    if state.edges.is_empty() {
        // The surviving super-vertices are mutually disconnected
        // components: the empty cut separates them. Without this base
        // case a graph with more than 6 components recurses forever,
        // since contraction can never reduce `vertices` further.
        return 0;
    }
    if n <= 6 {
        state.contract_to(2, rng);
        return state.cut_value();
    }
    let target = (n as f64 / std::f64::consts::SQRT_2).ceil() as usize + 1;
    let mut first = state.clone();
    first.contract_to(target, rng);
    let cut_a = karger_stein_rec(&mut first, rng);
    state.contract_to(target, rng);
    let cut_b = karger_stein_rec(state, rng);
    cut_a.min(cut_b)
}

/// Runs `trials` independent Karger–Stein trials and returns the best
/// (smallest) cut found. With O(log² n) trials the result is the true
/// minimum cut with high probability; tests use known-cut graphs.
pub fn min_cut(graph: &CsrGraph, trials: usize, seed: u64) -> usize {
    let n = graph.num_vertices();
    if n < 2 {
        return 0;
    }
    let edges: Vec<(u32, u32)> = graph.edges_undirected().collect();
    if edges.is_empty() {
        return 0; // disconnected: the empty cut separates components
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = usize::MAX;
    for _ in 0..trials.max(1) {
        let mut state = ContractState::new(n, edges.clone());
        best = best.min(karger_stein_rec(&mut state, &mut rng));
    }
    best
}

/// Exhaustive minimum cut for tiny graphs (≤ ~20 vertices): tries
/// every bipartition — the oracle used in tests.
pub fn min_cut_brute(graph: &CsrGraph) -> usize {
    let n = graph.num_vertices();
    assert!((2..=24).contains(&n), "brute force only for tiny graphs");
    let edges: Vec<(NodeId, NodeId)> = graph.edges_undirected().collect();
    let mut best = usize::MAX;
    // Fix vertex 0 on side A; every non-zero mask over vertices 1..n
    // describes a non-trivial bipartition.
    for mask in 1..(1u32 << (n - 1)) {
        let side_b = |v: NodeId| -> bool { v != 0 && (mask >> (v - 1)) & 1 == 1 };
        let cut = edges
            .iter()
            .filter(|&&(u, v)| side_b(u) != side_b(v))
            .count();
        best = best.min(cut);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques(bridges: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u32, 6] {
            for i in 0..6 {
                for j in i + 1..6 {
                    edges.push((base + i, base + j));
                }
            }
        }
        for b in 0..bridges as u32 {
            edges.push((b, 6 + b));
        }
        CsrGraph::from_undirected_edges(12, &edges)
    }

    #[test]
    fn many_components_terminate_with_empty_cut() {
        // Regression: >6 mutually disconnected components used to
        // recurse forever (contraction runs out of edges before the
        // n <= 6 base case can be reached).
        let edges: Vec<(u32, u32)> = (0..8u32).map(|t| (3 * t, 3 * t + 1)).collect();
        let g = CsrGraph::from_undirected_edges(24, &edges);
        assert_eq!(min_cut(&g, 8, 1), 0);
    }

    #[test]
    fn bridge_counts_are_found() {
        for bridges in 1..=3 {
            let g = two_cliques(bridges);
            assert_eq!(min_cut(&g, 30, 42), bridges, "bridges {bridges}");
        }
    }

    #[test]
    fn cycle_has_cut_two() {
        let mut edges: Vec<(u32, u32)> = (0..10u32).map(|v| (v, (v + 1) % 10)).collect();
        edges.dedup();
        let g = CsrGraph::from_undirected_edges(10, &edges);
        assert_eq!(min_cut(&g, 30, 7), 2);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..4 {
            let g = gms_gen::gnp(12, 0.45, seed);
            use gms_core::Graph as _;
            if g.num_edges_undirected() == 0 {
                continue;
            }
            let brute = min_cut_brute(&g);
            let ks = min_cut(&g, 40, seed);
            assert_eq!(ks, brute, "seed {seed}");
        }
    }

    #[test]
    fn star_cut_is_one() {
        let edges: Vec<(u32, u32)> = (1..8u32).map(|v| (0, v)).collect();
        let g = CsrGraph::from_undirected_edges(8, &edges);
        assert_eq!(min_cut(&g, 20, 3), 1);
    }

    #[test]
    fn degenerate_graphs() {
        let empty = CsrGraph::from_undirected_edges(1, &[]);
        assert_eq!(min_cut(&empty, 5, 1), 0);
        let disconnected = CsrGraph::from_undirected_edges(4, &[(0, 1)]);
        assert_eq!(min_cut(&disconnected, 5, 1), 0);
    }
}
