//! # gms-opt
//!
//! Optimization problems of the GMS specification (§4.1.4):
//!
//! * [`coloring`] — greedy, Jones–Plassmann (vertex prioritization,
//!   covering the Hasenplaugh et al. ordering heuristics) and
//!   Johansson-style random-palette coloring, with a verifier;
//! * [`mst`] — Borůvka's minimum spanning forest (parallel lightest-
//!   edge selection) with a Kruskal oracle;
//! * [`mincut`] — Karger–Stein randomized minimum cut with an
//!   exhaustive oracle.

#![warn(missing_docs)]

pub mod coloring;
pub mod coloring_orders;
pub mod mincut;
pub mod mst;

pub use coloring::{greedy_coloring, johansson, jones_plassmann, verify_coloring};
pub use coloring_orders::ColoringOrder;
pub use mincut::{min_cut, min_cut_brute};
pub use mst::{boruvka, forest_weight, kruskal, WeightedEdge};
