//! Minimum graph coloring heuristics (§4.1.4, Table 4): vertex
//! prioritization (Jones–Plassmann with configurable priorities,
//! covering the Hasenplaugh et al. ordering heuristics) and random
//! palettes (Johansson-style) — the two algorithm families the paper
//! includes.

use gms_core::{CsrGraph, Graph, NodeId};
use gms_graph::Rank;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Sequential greedy coloring in a given vertex order: each vertex
/// takes the smallest color unused by already-colored neighbors.
/// With a degeneracy order this uses at most `d + 1` colors.
pub fn greedy_coloring(graph: &CsrGraph, order: &Rank) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut colors = vec![u32::MAX; n];
    let mut forbidden: Vec<u32> = Vec::new();
    for v in order.order() {
        forbidden.clear();
        forbidden.extend(
            graph
                .neighbors(v)
                .map(|w| colors[w as usize])
                .filter(|&c| c != u32::MAX),
        );
        forbidden.sort_unstable();
        forbidden.dedup();
        let mut color = 0u32;
        for &f in &forbidden {
            if f == color {
                color += 1;
            } else if f > color {
                break;
            }
        }
        colors[v as usize] = color;
    }
    colors
}

/// Jones–Plassmann parallel coloring: vertices carry priorities;
/// in each round, every uncolored vertex whose uncolored neighbors all
/// have lower priority picks its smallest feasible color. Priorities
/// come from a [`Rank`], so the Hasenplaugh et al. ordering heuristics
/// (largest-degree-first, smallest-degree-last, ...) plug in directly.
/// Returns `(colors, rounds)`.
pub fn jones_plassmann(graph: &CsrGraph, priority: &Rank) -> (Vec<u32>, usize) {
    let n = graph.num_vertices();
    let mut colors = vec![u32::MAX; n];
    let mut active: Vec<NodeId> = graph.vertices().collect();
    let mut rounds = 0usize;
    while !active.is_empty() {
        rounds += 1;
        // A vertex is a local maximum if every *uncolored* neighbor
        // has lower priority. Local maxima form an independent set in
        // the uncolored subgraph, so they can color simultaneously.
        let snapshot = colors.clone();
        let (ready, waiting): (Vec<NodeId>, Vec<NodeId>) = active.par_iter().partition(|&&v| {
            graph
                .neighbors(v)
                .all(|w| snapshot[w as usize] != u32::MAX || priority.precedes(w, v))
        });
        assert!(!ready.is_empty(), "priorities must be a total order");
        let assigned: Vec<(NodeId, u32)> = ready
            .par_iter()
            .map(|&v| {
                let mut forbidden: Vec<u32> = graph
                    .neighbors(v)
                    .map(|w| snapshot[w as usize])
                    .filter(|&c| c != u32::MAX)
                    .collect();
                forbidden.sort_unstable();
                forbidden.dedup();
                let mut color = 0u32;
                for &f in &forbidden {
                    if f == color {
                        color += 1;
                    } else if f > color {
                        break;
                    }
                }
                (v, color)
            })
            .collect();
        for (v, c) in assigned {
            colors[v as usize] = c;
        }
        active = waiting;
    }
    (colors, rounds)
}

/// Johansson-style random-palette coloring: every round, each
/// uncolored vertex tentatively draws from a palette of size
/// `palette_factor · (Δ + 1)`; the draw sticks unless a neighbor
/// (colored, or tentatively drawing this round with higher ID) holds
/// the same color. Returns `(colors, rounds)`.
pub fn johansson(graph: &CsrGraph, palette_factor: f64, seed: u64) -> (Vec<u32>, usize) {
    assert!(palette_factor >= 1.0);
    let n = graph.num_vertices();
    let palette = ((graph.max_degree() as f64 + 1.0) * palette_factor).ceil() as u32;
    let mut colors = vec![u32::MAX; n];
    let mut active: Vec<NodeId> = graph.vertices().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rounds = 0usize;
    while !active.is_empty() {
        rounds += 1;
        let tentative: Vec<(NodeId, u32)> = active
            .iter()
            .map(|&v| (v, rng.gen_range(0..palette)))
            .collect();
        let draw: std::collections::HashMap<NodeId, u32> = tentative.iter().copied().collect();
        let mut next_active = Vec::new();
        for &(v, c) in &tentative {
            let conflict = graph
                .neighbors(v)
                .any(|w| colors[w as usize] == c || (w > v && draw.get(&w) == Some(&c)));
            if conflict {
                next_active.push(v);
            } else {
                colors[v as usize] = c;
            }
        }
        active = next_active;
    }
    (colors, rounds)
}

/// Validates a proper coloring and returns the number of colors used.
pub fn verify_coloring(graph: &CsrGraph, colors: &[u32]) -> Result<usize, (NodeId, NodeId)> {
    for (u, v) in graph.edges_undirected() {
        if colors[u as usize] == colors[v as usize] {
            return Err((u, v));
        }
    }
    let distinct: std::collections::HashSet<u32> = colors.iter().copied().collect();
    Ok(distinct.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_order::{degeneracy_order, degree_order_desc};

    #[test]
    fn greedy_on_degeneracy_order_uses_d_plus_one_colors() {
        let g = gms_gen::gnp(200, 0.05, 3);
        let dgr = degeneracy_order(&g);
        // Smallest-last coloring: color in REVERSE peeling order, so
        // every vertex sees at most d already-colored neighbors.
        let mut reversed = dgr.rank.order();
        reversed.reverse();
        let rank = gms_graph::Rank::from_order(&reversed);
        let colors = greedy_coloring(&g, &rank);
        let used = verify_coloring(&g, &colors).expect("proper coloring");
        assert!(
            used <= dgr.degeneracy + 1,
            "{used} > d+1 = {}",
            dgr.degeneracy + 1
        );
    }

    #[test]
    fn jones_plassmann_proper_and_bounded() {
        let g = gms_gen::kronecker_default(9, 6, 4);
        let priority = degree_order_desc(&g);
        let (colors, rounds) = jones_plassmann(&g, &priority);
        let used = verify_coloring(&g, &colors).expect("proper coloring");
        assert!(used <= g.max_degree() + 1);
        assert!(rounds >= 1);
    }

    #[test]
    fn jones_plassmann_matches_greedy_color_count_on_bipartite() {
        let g = gms_gen::grid(6, 6); // bipartite: 2 colors suffice
        let (colors, _) = jones_plassmann(&g, &degree_order_desc(&g));
        let used = verify_coloring(&g, &colors).unwrap();
        assert!(used <= 4, "grids color with few colors, got {used}");
    }

    #[test]
    fn johansson_is_proper() {
        let g = gms_gen::gnp(150, 0.07, 6);
        let (colors, rounds) = johansson(&g, 2.0, 9);
        verify_coloring(&g, &colors).expect("proper coloring");
        assert!(rounds < 100, "randomized palette converges fast");
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = gms_gen::complete(7);
        let (colors, _) = jones_plassmann(&g, &degree_order_desc(&g));
        assert_eq!(verify_coloring(&g, &colors).unwrap(), 7);
        let greedy = greedy_coloring(&g, &degeneracy_order(&g).rank);
        assert_eq!(verify_coloring(&g, &greedy).unwrap(), 7);
    }

    #[test]
    fn verify_detects_conflicts() {
        let g = gms_gen::complete(3);
        assert!(verify_coloring(&g, &[0, 0, 1]).is_err());
        assert_eq!(verify_coloring(&g, &[0, 1, 2]), Ok(3));
    }
}
