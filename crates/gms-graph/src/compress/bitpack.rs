//! Fixed-width bit packing of vertex IDs — the core Log(Graph)
//! technique (§B.1.3): every ID in a graph with `n` vertices needs
//! only `⌈log₂ n⌉` bits, giving 20–35% space savings over 32-bit
//! storage with near-zero decode cost.

/// A packed array of fixed-width unsigned integers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitPacked {
    words: Vec<u64>,
    width: u32,
    len: usize,
}

/// Bits needed to represent values `< universe` (at least 1).
#[inline]
pub fn width_for_universe(universe: usize) -> u32 {
    usize::BITS
        - universe
            .saturating_sub(1)
            .leading_zeros()
            .min(usize::BITS - 1)
}

impl BitPacked {
    /// Packs `values`, each of which must fit in `width` bits.
    ///
    /// # Panics
    /// Panics if `width` is 0, exceeds 32, or a value overflows it.
    pub fn pack(values: &[u32], width: u32) -> Self {
        assert!((1..=32).contains(&width), "width must be in 1..=32");
        let total_bits = values.len() * width as usize;
        let mut words = vec![0u64; total_bits.div_ceil(64)];
        for (i, &v) in values.iter().enumerate() {
            assert!(u64::from(v) < (1u64 << width), "value exceeds width");
            let bit = i * width as usize;
            let (word, shift) = (bit / 64, (bit % 64) as u32);
            words[word] |= u64::from(v) << shift;
            if shift + width > 64 {
                words[word + 1] |= u64::from(v) >> (64 - shift);
            }
        }
        Self {
            words,
            width,
            len: values.len(),
        }
    }

    /// Packs with the minimal width for values `< universe`.
    pub fn pack_for_universe(values: &[u32], universe: usize) -> Self {
        Self::pack(values, width_for_universe(universe.max(2)))
    }

    /// Reads the value at `index`.
    #[inline]
    pub fn get(&self, index: usize) -> u32 {
        debug_assert!(index < self.len);
        let bit = index * self.width as usize;
        let (word, shift) = (bit / 64, (bit % 64) as u32);
        let mut v = self.words[word] >> shift;
        if shift + self.width > 64 {
            v |= self.words[word + 1] << (64 - shift);
        }
        (v & ((1u64 << self.width) - 1)) as u32
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit width per value.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Heap bytes of the packed payload.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// Iterates all values.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).map(|i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_computation() {
        assert_eq!(width_for_universe(2), 1);
        assert_eq!(width_for_universe(3), 2);
        assert_eq!(width_for_universe(256), 8);
        assert_eq!(width_for_universe(257), 9);
        assert_eq!(width_for_universe(1 << 20), 20);
    }

    #[test]
    fn roundtrip_various_widths() {
        for width in [1u32, 5, 7, 8, 13, 17, 31, 32] {
            let mask = if width == 32 {
                u32::MAX
            } else {
                (1 << width) - 1
            };
            let values: Vec<u32> = (0..257u32)
                .map(|i| i.wrapping_mul(2_654_435_761) & mask)
                .collect();
            let packed = BitPacked::pack(&values, width);
            assert_eq!(packed.len(), values.len());
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(packed.get(i), v, "width {width} index {i}");
            }
            assert_eq!(packed.iter().collect::<Vec<_>>(), values);
        }
    }

    #[test]
    fn straddles_word_boundaries() {
        // width 20: value index 3 occupies bits 60..80, crossing words.
        let values = vec![0xF_FFFF_u32; 8];
        let packed = BitPacked::pack(&values, 20);
        for i in 0..8 {
            assert_eq!(packed.get(i), 0xF_FFFF);
        }
    }

    #[test]
    fn pack_for_universe_is_compact() {
        let values: Vec<u32> = (0..1000).collect();
        let packed = BitPacked::pack_for_universe(&values, 1000);
        assert_eq!(packed.width(), 10);
        assert!(packed.heap_bytes() < values.len() * 4);
    }

    #[test]
    #[should_panic(expected = "value exceeds width")]
    fn overflow_is_rejected() {
        BitPacked::pack(&[8], 3);
    }
}
