//! Gap (difference) encoding of sorted neighborhoods (§B.2): a sorted
//! neighborhood `[a0, a1, a2, ...]` is stored as `[a0, a1-a0, a2-a1,
//! ...]`; combined with varints, small gaps — common after good vertex
//! relabelings — compress to single bytes.

use super::varint;

/// Encodes a strictly increasing neighborhood as varint gaps.
pub fn encode(sorted: &[u32]) -> Vec<u8> {
    debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::with_capacity(sorted.len());
    let mut prev = 0u32;
    for (i, &v) in sorted.iter().enumerate() {
        let gap = if i == 0 { v } else { v - prev };
        varint::encode_u32(gap, &mut out);
        prev = v;
    }
    out
}

/// Decodes `count` values from a gap-encoded buffer.
pub fn decode(mut input: &[u8], count: usize) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(count);
    decode_append(&mut input, count, &mut out)?;
    Some(out)
}

/// Decodes `count` values into `out`, clearing it first — the
/// allocation-free neighborhood decode: once `out` has grown to the
/// maximum degree it is reused without touching the allocator.
/// Returns the number of payload bytes consumed, or `None` on
/// truncated/over-long varints or a prefix-sum overflow.
#[inline]
pub fn decode_into(mut input: &[u8], count: usize, out: &mut Vec<u32>) -> Option<usize> {
    out.clear();
    decode_append(&mut input, count, out)
}

/// Decodes `count` values, appending to `out` (the [`decode_into`]
/// body, exposed separately so a full-graph decode can fill one big
/// buffer). Advances `input` past the consumed bytes and returns
/// their number. Four gaps are decoded per step through
/// [`varint::decode4_u32`], so dense single-byte runs — the common
/// case after a locality reordering — move four entries per 32-bit
/// load instead of one per byte-test loop.
pub fn decode_append(input: &mut &[u8], count: usize, out: &mut Vec<u32>) -> Option<usize> {
    let start_len = input.len();
    out.reserve(count);
    let mut remaining = count;
    let mut acc = 0u32;
    if remaining > 0 {
        // The first entry is absolute, not a gap.
        acc = varint::decode_u32(input)?;
        out.push(acc);
        remaining -= 1;
    }
    let mut quad = [0u32; 4];
    while remaining >= 4 {
        varint::decode4_u32(input, &mut quad)?;
        for gap in quad {
            acc = acc.checked_add(gap)?;
            out.push(acc);
        }
        remaining -= 4;
    }
    for _ in 0..remaining {
        let gap = varint::decode_u32(input)?;
        acc = acc.checked_add(gap)?;
        out.push(acc);
    }
    Some(start_len - input.len())
}

/// Iterator-based decoder that avoids materializing the neighborhood.
pub struct GapDecoder<'a> {
    input: &'a [u8],
    remaining: usize,
    acc: u32,
    first: bool,
}

impl<'a> GapDecoder<'a> {
    /// Starts decoding `count` values from `input`.
    pub fn new(input: &'a [u8], count: usize) -> Self {
        Self {
            input,
            remaining: count,
            acc: 0,
            first: true,
        }
    }
}

impl Iterator for GapDecoder<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        let gap = varint::decode_u32(&mut self.input)?;
        self.acc = if self.first { gap } else { self.acc + gap };
        self.first = false;
        self.remaining -= 1;
        Some(self.acc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let neigh = vec![3u32, 4, 9, 100, 101, 70_000];
        let encoded = encode(&neigh);
        assert_eq!(decode(&encoded, neigh.len()), Some(neigh.clone()));
        let streamed: Vec<u32> = GapDecoder::new(&encoded, neigh.len()).collect();
        assert_eq!(streamed, neigh);
    }

    #[test]
    fn dense_ranges_compress_to_one_byte_per_entry() {
        let neigh: Vec<u32> = (1000..2000).collect();
        let encoded = encode(&neigh);
        // First value takes 2 bytes; every following gap is 1.
        assert_eq!(encoded.len(), 2 + 999);
    }

    #[test]
    fn empty_neighborhood() {
        assert!(encode(&[]).is_empty());
        assert_eq!(decode(&[], 0), Some(vec![]));
    }

    #[test]
    fn truncated_buffer_fails() {
        let encoded = encode(&[1, 2, 3]);
        assert_eq!(decode(&encoded[..1], 3), None);
        let mut out = Vec::new();
        assert_eq!(decode_into(&encoded[..1], 3, &mut out), None);
    }

    #[test]
    fn decode_into_reuses_capacity_and_reports_bytes() {
        let neigh: Vec<u32> = (0..533u32).map(|i| i * 3 + 1).collect();
        let encoded = encode(&neigh);
        let mut out = Vec::new();
        let consumed = decode_into(&encoded, neigh.len(), &mut out).unwrap();
        assert_eq!(consumed, encoded.len());
        assert_eq!(out, neigh);
        let cap = out.capacity();
        let ptr = out.as_ptr();
        // A second decode of a same-size neighborhood must reuse the
        // buffer in place.
        decode_into(&encoded, neigh.len(), &mut out).unwrap();
        assert_eq!(out, neigh);
        assert_eq!((out.capacity(), out.as_ptr()), (cap, ptr));
    }

    #[test]
    fn decode_into_agrees_with_iterator_on_awkward_counts() {
        // Counts around the quad width exercise the head/quad/tail
        // split: 0..=9 covers empty, 1 (absolute only), 4, 5, 8, 9.
        for count in 0..10usize {
            let neigh: Vec<u32> = (0..count as u32).map(|i| i * 1000 + 7).collect();
            let encoded = encode(&neigh);
            let mut out = Vec::new();
            decode_into(&encoded, count, &mut out).unwrap();
            let streamed: Vec<u32> = GapDecoder::new(&encoded, count).collect();
            assert_eq!(out, neigh);
            assert_eq!(streamed, neigh);
        }
    }

    #[test]
    fn overflowing_prefix_sum_is_rejected() {
        // Two max-size gaps overflow u32 on the second add.
        let mut encoded = Vec::new();
        varint::encode_u32(u32::MAX, &mut encoded);
        varint::encode_u32(u32::MAX, &mut encoded);
        assert_eq!(decode(&encoded, 2), None);
    }
}
