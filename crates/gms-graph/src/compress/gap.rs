//! Gap (difference) encoding of sorted neighborhoods (§B.2): a sorted
//! neighborhood `[a0, a1, a2, ...]` is stored as `[a0, a1-a0, a2-a1,
//! ...]`; combined with varints, small gaps — common after good vertex
//! relabelings — compress to single bytes.

use super::varint;

/// Encodes a strictly increasing neighborhood as varint gaps.
pub fn encode(sorted: &[u32]) -> Vec<u8> {
    debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::with_capacity(sorted.len());
    let mut prev = 0u32;
    for (i, &v) in sorted.iter().enumerate() {
        let gap = if i == 0 { v } else { v - prev };
        varint::encode_u32(gap, &mut out);
        prev = v;
    }
    out
}

/// Decodes `count` values from a gap-encoded buffer.
pub fn decode(mut input: &[u8], count: usize) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(count);
    let mut acc = 0u32;
    for i in 0..count {
        let gap = varint::decode_u32(&mut input)?;
        acc = if i == 0 { gap } else { acc.checked_add(gap)? };
        out.push(acc);
    }
    Some(out)
}

/// Iterator-based decoder that avoids materializing the neighborhood.
pub struct GapDecoder<'a> {
    input: &'a [u8],
    remaining: usize,
    acc: u32,
    first: bool,
}

impl<'a> GapDecoder<'a> {
    /// Starts decoding `count` values from `input`.
    pub fn new(input: &'a [u8], count: usize) -> Self {
        Self {
            input,
            remaining: count,
            acc: 0,
            first: true,
        }
    }
}

impl Iterator for GapDecoder<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        let gap = varint::decode_u32(&mut self.input)?;
        self.acc = if self.first { gap } else { self.acc + gap };
        self.first = false;
        self.remaining -= 1;
        Some(self.acc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let neigh = vec![3u32, 4, 9, 100, 101, 70_000];
        let encoded = encode(&neigh);
        assert_eq!(decode(&encoded, neigh.len()), Some(neigh.clone()));
        let streamed: Vec<u32> = GapDecoder::new(&encoded, neigh.len()).collect();
        assert_eq!(streamed, neigh);
    }

    #[test]
    fn dense_ranges_compress_to_one_byte_per_entry() {
        let neigh: Vec<u32> = (1000..2000).collect();
        let encoded = encode(&neigh);
        // First value takes 2 bytes; every following gap is 1.
        assert_eq!(encoded.len(), 2 + 999);
    }

    #[test]
    fn empty_neighborhood() {
        assert!(encode(&[]).is_empty());
        assert_eq!(decode(&[], 0), Some(vec![]));
    }

    #[test]
    fn truncated_buffer_fails() {
        let encoded = encode(&[1, 2, 3]);
        assert_eq!(decode(&encoded[..1], 3), None);
    }
}
