//! k²-trees (§B.2, Brisaboa et al.): a recursive 2×2 partition of the
//! adjacency matrix encoded as per-level bitvectors. Empty quadrants
//! prune entire subtrees, so sparse and clustered matrices compress
//! well while still answering `has_edge` in O(log n) bit probes.

use gms_core::{CsrGraph, Graph, NodeId};

const K: usize = 2;

/// A k²-tree over an `n × n` adjacency matrix (k = 2).
#[derive(Clone, Debug)]
pub struct K2Tree {
    /// Concatenated internal-level bits, level by level.
    bits: Vec<bool>,
    /// Start index of each level within `bits`.
    level_starts: Vec<usize>,
    /// Matrix side, padded to a power of K.
    side: usize,
    /// Real vertex count.
    n: usize,
}

impl K2Tree {
    /// Builds from a CSR graph (directed view of its arcs).
    pub fn from_graph(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let mut side = 1usize;
        while side < n.max(1) {
            side *= K;
        }
        let mut edges: Vec<(u32, u32)> = graph.arcs().collect();
        edges.sort_unstable();
        let mut bits = Vec::new();
        let mut level_starts = Vec::new();
        // Breadth-first construction: at each level, every surviving
        // quadrant expands into K*K child bits.
        // (row, col, side, edges-in-quadrant)
        type Quadrant = (usize, usize, usize, Vec<(u32, u32)>);
        let mut frontier: Vec<Quadrant> = if edges.is_empty() {
            Vec::new()
        } else {
            vec![(0usize, 0usize, side, edges)]
        };
        let mut level_side = side;
        while level_side > 1 && !frontier.is_empty() {
            level_starts.push(bits.len());
            let child = level_side / K;
            let mut next = Vec::new();
            for (row, col, _, cell_edges) in frontier {
                // Partition this quadrant's edges into K*K children.
                let mut buckets: [[Vec<(u32, u32)>; K]; K] = Default::default();
                for (r, c) in cell_edges {
                    let br = ((r as usize - row) / child).min(K - 1);
                    let bc = ((c as usize - col) / child).min(K - 1);
                    buckets[br][bc].push((r, c));
                }
                for (br, row_bucket) in buckets.into_iter().enumerate() {
                    for (bc, bucket) in row_bucket.into_iter().enumerate() {
                        let occupied = !bucket.is_empty();
                        bits.push(occupied);
                        if occupied && child > 1 {
                            next.push((row + br * child, col + bc * child, child, bucket));
                        }
                    }
                }
            }
            frontier = next;
            level_side = child;
        }
        Self {
            bits,
            level_starts,
            side,
            n,
        }
    }

    /// Tests whether the arc `(u, v)` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if self.bits.is_empty() || (u as usize) >= self.n || (v as usize) >= self.n {
            return false;
        }
        let mut side = self.side;
        let (mut row, mut col) = (u as usize, v as usize);
        // Position of the current node's first child bit within its level.
        let mut node_offset = 0usize;
        for level in 0..self.level_starts.len() {
            let child = side / K;
            let br = row / child;
            let bc = col / child;
            let bit_index = self.level_starts[level] + node_offset + br * K + bc;
            if !self.bits[bit_index] {
                return false;
            }
            if child == 1 {
                return true;
            }
            // Rank within the level: children at the next level are
            // ordered by the rank of their parent bit.
            let rank = self.rank_in_level(level, node_offset + br * K + bc);
            node_offset = rank * K * K;
            row %= child;
            col %= child;
            side = child;
        }
        true
    }

    /// Number of `true` bits in `level` strictly before `pos`.
    fn rank_in_level(&self, level: usize, pos: usize) -> usize {
        let start = self.level_starts[level];
        self.bits[start..start + pos].iter().filter(|&&b| b).count()
    }

    /// Reconstructs all arcs (sorted).
    pub fn arcs(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        if self.bits.is_empty() {
            return out;
        }
        self.collect(0, 0, 0, self.side, 0, &mut out);
        out.sort_unstable();
        out
    }

    fn collect(
        &self,
        level: usize,
        node_offset: usize,
        base: usize,
        side: usize,
        col_base: usize,
        out: &mut Vec<(NodeId, NodeId)>,
    ) {
        let child = side / K;
        for br in 0..K {
            for bc in 0..K {
                let pos = node_offset + br * K + bc;
                let bit_index = self.level_starts[level] + pos;
                if !self.bits[bit_index] {
                    continue;
                }
                let row = base + br * child;
                let col = col_base + bc * child;
                if child == 1 {
                    if row < self.n && col < self.n {
                        out.push((row as NodeId, col as NodeId));
                    }
                } else {
                    let rank = self.rank_in_level(level, pos);
                    self.collect(level + 1, rank * K * K, row, child, col, out);
                }
            }
        }
    }

    /// Stored bits (the compressed size measure).
    pub fn num_bits(&self) -> usize {
        self.bits.len()
    }

    /// Approximate heap bytes (1 bit per entry if bit-packed; the
    /// in-memory `Vec<bool>` uses a byte per bit, so report the packed
    /// figure the structure is designed for).
    pub fn packed_bytes(&self) -> usize {
        self.bits.len().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(n: usize, edges: &[(u32, u32)]) {
        let g = CsrGraph::from_undirected_edges(n, edges);
        let tree = K2Tree::from_graph(&g);
        let mut expected: Vec<(u32, u32)> = g.arcs().collect();
        expected.sort_unstable();
        assert_eq!(tree.arcs(), expected);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                assert_eq!(tree.has_edge(u, v), g.has_edge(u, v), "({u},{v})");
            }
        }
    }

    #[test]
    fn small_graphs_roundtrip() {
        roundtrip(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        roundtrip(5, &[(0, 4), (1, 3)]);
        roundtrip(3, &[]);
        roundtrip(1, &[]);
    }

    #[test]
    fn non_power_of_two_sizes() {
        roundtrip(7, &[(0, 6), (5, 6), (2, 3), (1, 4), (0, 3)]);
        roundtrip(9, &[(0, 8), (7, 8), (3, 5)]);
    }

    #[test]
    fn sparse_matrix_uses_few_bits() {
        // 64 vertices, single edge: the tree prunes all empty quadrants.
        let g = CsrGraph::from_undirected_edges(64, &[(0, 63)]);
        let tree = K2Tree::from_graph(&g);
        // A dense bitmap would use 64*64 = 4096 bits.
        assert!(tree.num_bits() < 100);
        assert!(tree.has_edge(0, 63));
        assert!(tree.has_edge(63, 0));
        assert!(!tree.has_edge(1, 2));
    }

    #[test]
    fn directed_arcs_preserved() {
        let g = CsrGraph::from_arcs(4, &[(0, 1), (2, 3), (3, 0)]);
        let tree = K2Tree::from_graph(&g);
        assert!(tree.has_edge(0, 1));
        assert!(!tree.has_edge(1, 0));
        assert_eq!(tree.arcs(), vec![(0, 1), (2, 3), (3, 0)]);
    }
}
