//! Variable-length integer (Varint) encoding — one of the
//! fine-grained element encodings in the paper's storage taxonomy
//! (Figure 3, §B.2). Small values take 1 byte, each byte carries 7
//! payload bits and a continuation flag.

use bytes::Buf;

/// Appends `value` to `out` in LEB128 varint form.
#[inline]
pub fn encode_u32(value: u32, out: &mut Vec<u8>) {
    let mut v = value;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one varint from the front of `input`, advancing it.
/// Returns `None` on truncated or over-long input.
#[inline]
pub fn decode_u32(input: &mut &[u8]) -> Option<u32> {
    let mut value: u32 = 0;
    let mut shift = 0;
    while input.has_remaining() {
        let byte = input.get_u8();
        if shift >= 32 {
            return None; // over-long encoding
        }
        value |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
    None
}

/// Decodes four varints from the front of `input` at once, advancing
/// it. The fast path fires when all four are single-byte — one 32-bit
/// load, one continuation-bit test, four shifts — which is the common
/// case for gap streams after a locality reordering (most gaps fit in
/// 7 bits). Mixed-width quads fall back to the scalar decoder.
/// Returns `None` on truncated or over-long input.
#[inline]
pub fn decode4_u32(input: &mut &[u8], out: &mut [u32; 4]) -> Option<()> {
    if input.len() >= 4 {
        let word = u32::from_le_bytes(input[..4].try_into().expect("4-byte slice"));
        if word & 0x8080_8080 == 0 {
            out[0] = word & 0x7F;
            out[1] = (word >> 8) & 0x7F;
            out[2] = (word >> 16) & 0x7F;
            out[3] = (word >> 24) & 0x7F;
            *input = &input[4..];
            return Some(());
        }
    }
    for slot in out.iter_mut() {
        *slot = decode_u32(input)?;
    }
    Some(())
}

/// Encodes a whole slice.
pub fn encode_slice(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    for &v in values {
        encode_u32(v, &mut out);
    }
    out
}

/// Decodes `count` varints.
pub fn decode_slice(mut input: &[u8], count: usize) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_u32(&mut input)?);
    }
    Some(out)
}

/// Bytes a varint encoding of `value` occupies.
#[inline]
pub fn encoded_len(value: u32) -> usize {
    match value {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0x0FFF_FFFF => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_boundaries() {
        for v in [0u32, 1, 127, 128, 16_383, 16_384, u32::MAX - 1, u32::MAX] {
            let mut buf = Vec::new();
            encode_u32(v, &mut buf);
            assert_eq!(buf.len(), encoded_len(v));
            let mut slice = buf.as_slice();
            assert_eq!(decode_u32(&mut slice), Some(v));
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn slice_roundtrip() {
        let values: Vec<u32> = (0..1000).map(|i| i * 37).collect();
        let encoded = encode_slice(&values);
        assert_eq!(decode_slice(&encoded, values.len()), Some(values));
    }

    #[test]
    fn quad_decode_matches_scalar() {
        // Mix of single-byte runs (fast path) and wide values
        // (fallback path), plus a tail shorter than 4.
        let values: Vec<u32> = (0..1003u32)
            .map(|i| match i % 7 {
                0 => i % 128,
                1 => 127,
                2 => 128,
                3 => 16_384,
                4 => u32::MAX - i,
                _ => i % 90,
            })
            .collect();
        let encoded = encode_slice(&values);
        let mut cursor = encoded.as_slice();
        let mut decoded = Vec::new();
        let mut quad = [0u32; 4];
        while decoded.len() + 4 <= values.len() {
            decode4_u32(&mut cursor, &mut quad).unwrap();
            decoded.extend_from_slice(&quad);
        }
        while decoded.len() < values.len() {
            decoded.push(decode_u32(&mut cursor).unwrap());
        }
        assert_eq!(decoded, values);
        assert!(cursor.is_empty());
    }

    #[test]
    fn quad_decode_detects_truncation() {
        let mut buf = Vec::new();
        for v in [1u32, 2, 3, 300] {
            encode_u32(v, &mut buf);
        }
        // 300 needs 2 bytes; cut its last byte off.
        let mut short = &buf[..buf.len() - 1];
        let mut quad = [0u32; 4];
        assert_eq!(decode4_u32(&mut short, &mut quad), None);
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut buf = Vec::new();
        encode_u32(300, &mut buf); // 2 bytes
        let mut short = &buf[..1];
        assert_eq!(decode_u32(&mut short), None);
    }

    #[test]
    fn overlong_input_is_rejected() {
        let bytes = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        let mut slice = bytes.as_slice();
        assert_eq!(decode_u32(&mut slice), None);
    }
}
