//! Run-length encoding of sorted neighborhoods (§B.2): maximal runs
//! of consecutive vertex IDs are stored as `(start, length)` pairs.
//! Effective for graphs with locality after relabeling (e.g. meshes,
//! road networks, recursive-bisection orders).

use super::varint;

/// Encodes a strictly increasing sequence as varint `(start-gap, run-length)`
/// pairs; returns the buffer and the number of runs.
pub fn encode(sorted: &[u32]) -> (Vec<u8>, usize) {
    debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::new();
    let mut runs = 0usize;
    let mut i = 0;
    let mut prev_end = 0u32;
    while i < sorted.len() {
        let start = sorted[i];
        let mut j = i + 1;
        while j < sorted.len() && sorted[j] == sorted[j - 1] + 1 {
            j += 1;
        }
        let len = (j - i) as u32;
        let gap = if runs == 0 { start } else { start - prev_end };
        varint::encode_u32(gap, &mut out);
        varint::encode_u32(len, &mut out);
        prev_end = start + len - 1;
        runs += 1;
        i = j;
    }
    (out, runs)
}

/// Decodes `runs` run pairs back to the full sequence.
pub fn decode(mut input: &[u8], runs: usize) -> Option<Vec<u32>> {
    let mut out = Vec::new();
    let mut prev_end = 0u32;
    for r in 0..runs {
        let gap = varint::decode_u32(&mut input)?;
        let len = varint::decode_u32(&mut input)?;
        if len == 0 {
            return None;
        }
        let start = if r == 0 {
            gap
        } else {
            prev_end.checked_add(gap)?
        };
        out.extend(start..start.checked_add(len)?);
        prev_end = start + len - 1;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_runs() {
        let neigh = vec![1u32, 2, 3, 7, 10, 11, 12, 13, 100];
        let (buf, runs) = encode(&neigh);
        assert_eq!(runs, 4);
        assert_eq!(decode(&buf, runs), Some(neigh));
    }

    #[test]
    fn single_long_run_is_tiny() {
        let neigh: Vec<u32> = (5000..15_000).collect();
        let (buf, runs) = encode(&neigh);
        assert_eq!(runs, 1);
        assert!(buf.len() <= 4, "one gap + one length varint");
        assert_eq!(decode(&buf, runs), Some(neigh));
    }

    #[test]
    fn empty_is_empty() {
        let (buf, runs) = encode(&[]);
        assert!(buf.is_empty());
        assert_eq!(runs, 0);
        assert_eq!(decode(&buf, 0), Some(vec![]));
    }

    #[test]
    fn zero_length_run_rejected() {
        let mut buf = Vec::new();
        varint::encode_u32(5, &mut buf);
        varint::encode_u32(0, &mut buf);
        assert_eq!(decode(&buf, 1), None);
    }
}
