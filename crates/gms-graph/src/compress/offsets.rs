//! Compact offset structures (§B.1.3): Log(Graph) compresses the CSR
//! offset array with structures approaching the storage lower bound.
//! We provide a sampled-degree scheme: absolute 64-bit offsets every
//! `BLOCK` vertices plus a varint-encoded degree stream in between,
//! trading O(BLOCK) decode work for ~8× less offset storage on sparse
//! graphs.

use super::varint;

const BLOCK: usize = 64;

/// A compressed offset array with sampled absolute anchors.
#[derive(Clone, Debug)]
pub struct CompactOffsets {
    /// Absolute offset of vertex `BLOCK * i`.
    anchors: Vec<u64>,
    /// Varint degree stream; anchor vertices are included so a block
    /// decode always starts fresh.
    degrees: Vec<u8>,
    /// Byte position in `degrees` where each block starts.
    block_starts: Vec<u32>,
    len: usize,
    total: usize,
}

impl CompactOffsets {
    /// Compresses a CSR offset array (length `n + 1`).
    pub fn from_offsets(offsets: &[usize]) -> Self {
        assert!(!offsets.is_empty());
        let n = offsets.len() - 1;
        let mut anchors = Vec::with_capacity(n.div_ceil(BLOCK));
        let mut degrees = Vec::new();
        let mut block_starts = Vec::with_capacity(n.div_ceil(BLOCK));
        for v in 0..n {
            if v % BLOCK == 0 {
                anchors.push(offsets[v] as u64);
                block_starts.push(degrees.len() as u32);
            }
            varint::encode_u32((offsets[v + 1] - offsets[v]) as u32, &mut degrees);
        }
        Self {
            anchors,
            degrees,
            block_starts,
            len: n,
            total: *offsets.last().unwrap(),
        }
    }

    /// Reconstructs `(start, end)` of vertex `v`'s neighborhood range.
    pub fn bounds(&self, v: usize) -> (usize, usize) {
        assert!(v < self.len);
        let block = v / BLOCK;
        let mut cursor = &self.degrees[self.block_starts[block] as usize..];
        let mut offset = self.anchors[block];
        for _ in block * BLOCK..v {
            offset += u64::from(varint::decode_u32(&mut cursor).expect("degree stream"));
        }
        let degree = varint::decode_u32(&mut cursor).expect("degree stream");
        (offset as usize, offset as usize + degree as usize)
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        let (start, end) = self.bounds(v);
        end - start
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for a zero-vertex graph.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total adjacency length (the final offset).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Heap bytes used by the compressed structure.
    pub fn heap_bytes(&self) -> usize {
        self.anchors.capacity() * 8 + self.degrees.capacity() + self.block_starts.capacity() * 4
    }

    /// Expands back to a plain offset array.
    pub fn to_offsets(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len + 1);
        out.push(0usize);
        let mut cursor = self.degrees.as_slice();
        let mut acc = 0usize;
        for _ in 0..self.len {
            acc += varint::decode_u32(&mut cursor).expect("degree stream") as usize;
            out.push(acc);
        }
        debug_assert_eq!(acc, self.total);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_offsets(n: usize) -> Vec<usize> {
        let mut offsets = vec![0usize];
        for v in 0..n {
            let degree = (v * 7 + 3) % 40;
            offsets.push(offsets[v] + degree);
        }
        offsets
    }

    #[test]
    fn bounds_match_plain_offsets() {
        let offsets = sample_offsets(300);
        let compact = CompactOffsets::from_offsets(&offsets);
        assert_eq!(compact.len(), 300);
        assert_eq!(compact.total(), *offsets.last().unwrap());
        for v in 0..300 {
            assert_eq!(compact.bounds(v), (offsets[v], offsets[v + 1]));
            assert_eq!(compact.degree(v), offsets[v + 1] - offsets[v]);
        }
        assert_eq!(compact.to_offsets(), offsets);
    }

    #[test]
    fn compresses_sparse_offsets() {
        // Degrees 0..3: one varint byte each vs 8 bytes per usize.
        let mut offsets = vec![0usize];
        for v in 0..10_000 {
            offsets.push(offsets[v] + v % 4);
        }
        let compact = CompactOffsets::from_offsets(&offsets);
        assert!(compact.heap_bytes() * 4 < offsets.len() * 8);
    }

    #[test]
    fn single_vertex_and_empty() {
        let compact = CompactOffsets::from_offsets(&[0, 5]);
        assert_eq!(compact.bounds(0), (0, 5));
        let empty = CompactOffsets::from_offsets(&[0]);
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.to_offsets(), vec![0]);
    }
}
