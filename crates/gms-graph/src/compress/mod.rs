//! Graph compression schemes (Figure 3, Appendix B): fine-grained
//! encodings (varint, bit packing), neighborhood transformations (gap,
//! run-length, reference encoding), compact offset structures, and
//! k²-trees. Each scheme trades storage for access cost differently;
//! the platform exposes them all so those trade-offs can be measured.

pub mod bitpack;
pub mod gap;
pub mod k2tree;
pub mod offsets;
pub mod reference;
pub mod rle;
pub mod varint;

pub use bitpack::{width_for_universe, BitPacked};
pub use k2tree::K2Tree;
pub use offsets::CompactOffsets;
pub use reference::ReferenceEncodedGraph;
