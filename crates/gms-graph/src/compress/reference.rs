//! Reference encoding (§B.2, WebGraph-style, simplified): the
//! neighborhood of vertex `v` is encoded against the neighborhood of a
//! *reference* vertex (here always `v - 1`) as a copy bitmask over the
//! reference plus a gap-encoded list of extra vertices. Near-identical
//! consecutive neighborhoods (common in web graphs after URL-order
//! relabeling) then cost a few bits each.

use super::gap;
use gms_core::{CsrGraph, Graph, NodeId};

/// A graph whose neighborhoods are reference-encoded against the
/// previous vertex.
#[derive(Clone, Debug)]
pub struct ReferenceEncodedGraph {
    /// Per-vertex encoded payloads.
    payloads: Vec<Vec<u8>>,
    /// Per-vertex `(copied, extras, reference_len)`.
    shapes: Vec<(u32, u32, u32)>,
    n: usize,
    arcs: usize,
}

impl ReferenceEncodedGraph {
    /// Encodes `graph`.
    pub fn encode(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let mut payloads = Vec::with_capacity(n);
        let mut shapes = Vec::with_capacity(n);
        let empty: &[NodeId] = &[];
        for v in 0..n {
            let neigh = graph.neighbors_slice(v as NodeId);
            let reference = if v == 0 {
                empty
            } else {
                graph.neighbors_slice(v as NodeId - 1)
            };
            let (payload, copied, extras) = encode_against(neigh, reference);
            payloads.push(payload);
            shapes.push((copied, extras, reference.len() as u32));
        }
        Self {
            payloads,
            shapes,
            n,
            arcs: graph.num_arcs(),
        }
    }

    /// Decodes the neighborhood of `v` (requires decoding `v`'s chain
    /// of references; the chain length is 1 here since the reference
    /// is always the previous vertex, decoded recursively).
    pub fn neighborhood(&self, v: NodeId) -> Vec<NodeId> {
        // Decode references iteratively from vertex 0 up to v would be
        // O(v); instead decode the reference chain lazily: vertex v
        // needs v-1, which needs v-2, ... Only vertices that actually
        // copy bits need their reference. Walk back to the nearest
        // vertex with zero copied entries, then decode forward.
        let mut start = v as usize;
        while start > 0 && self.shapes[start].0 > 0 {
            start -= 1;
        }
        let mut current = decode_with_reference(&self.payloads[start], self.shapes[start], &[]);
        for u in start + 1..=v as usize {
            current = decode_with_reference(&self.payloads[u], self.shapes[u], &current);
        }
        current
    }

    /// Decodes the whole graph back to CSR.
    pub fn decode(&self) -> CsrGraph {
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::with_capacity(self.arcs);
        let mut prev: Vec<NodeId> = Vec::new();
        for v in 0..self.n {
            let cur = decode_with_reference(&self.payloads[v], self.shapes[v], &prev);
            neighbors.extend_from_slice(&cur);
            offsets.push(neighbors.len());
            prev = cur;
        }
        CsrGraph::from_parts(offsets, neighbors)
    }

    /// Total encoded bytes (payloads only).
    pub fn payload_bytes(&self) -> usize {
        self.payloads.iter().map(Vec::len).sum()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }
}

/// Encodes `neigh` against `reference`; returns (payload, #copied, #extras).
fn encode_against(neigh: &[NodeId], reference: &[NodeId]) -> (Vec<u8>, u32, u32) {
    // Copy mask: one varint-packed bitmask over the reference entries.
    let mut copied = 0u32;
    let mut mask = vec![0u8; reference.len().div_ceil(8)];
    let mut extras: Vec<NodeId> = Vec::new();
    let mut i = 0;
    for &x in neigh {
        while i < reference.len() && reference[i] < x {
            i += 1;
        }
        if i < reference.len() && reference[i] == x {
            mask[i / 8] |= 1 << (i % 8);
            copied += 1;
            i += 1;
        } else {
            extras.push(x);
        }
    }
    let mut payload = mask;
    let extra_bytes = gap::encode(&extras);
    payload.extend_from_slice(&extra_bytes);
    (payload, copied, extras.len() as u32)
}

fn decode_with_reference(
    payload: &[u8],
    (copied, extras, ref_len): (u32, u32, u32),
    reference: &[NodeId],
) -> Vec<NodeId> {
    debug_assert!(copied == 0 || reference.len() == ref_len as usize);
    let mask_len = (ref_len as usize).div_ceil(8);
    let mask = &payload[..mask_len];
    let mut out = Vec::with_capacity((copied + extras) as usize);
    for (i, &r) in reference.iter().enumerate() {
        if mask[i / 8] & (1 << (i % 8)) != 0 {
            out.push(r);
        }
    }
    if extras > 0 {
        let extra_vals =
            gap::decode(&payload[mask_len..], extras as usize).expect("corrupt reference encoding");
        out.extend_from_slice(&extra_vals);
        out.sort_unstable();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_similar_neighborhoods() {
        // Vertices 1 and 2 share most of their neighborhoods — the
        // paper's motivating case for reference encoding.
        let g = CsrGraph::from_undirected_edges(
            8,
            &[
                (1, 3),
                (1, 4),
                (1, 6),
                (1, 7),
                (2, 3),
                (2, 4),
                (2, 6),
                (2, 7),
                (2, 5),
                (0, 7),
                (5, 6),
            ],
        );
        let enc = ReferenceEncodedGraph::encode(&g);
        assert_eq!(enc.decode(), g);
        for v in 0..8 {
            assert_eq!(enc.neighborhood(v), g.neighbors_slice(v).to_vec());
        }
    }

    #[test]
    fn identical_neighborhoods_compress_well() {
        // A complete bipartite-ish structure: left vertices all see the
        // same right side.
        let mut edges = Vec::new();
        for l in 0..50u32 {
            for r in 50..80u32 {
                edges.push((l, r));
            }
        }
        let g = CsrGraph::from_undirected_edges(80, &edges);
        let enc = ReferenceEncodedGraph::encode(&g);
        assert_eq!(enc.decode(), g);
        // The 49 repeated left neighborhoods cost a 4-byte mask each,
        // far below the 30*4-byte raw form.
        assert!(enc.payload_bytes() * 3 < g.num_arcs() * 4);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = CsrGraph::from_undirected_edges(3, &[]);
        let enc = ReferenceEncodedGraph::encode(&g);
        assert_eq!(enc.decode(), g);
        assert_eq!(enc.neighborhood(1), Vec::<NodeId>::new());
    }
}
