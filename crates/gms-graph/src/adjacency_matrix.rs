//! Adjacency-matrix representation (Figure 3 / §B.1.1): an `n × n`
//! bit matrix. O(1) edge queries and word-parallel neighborhood
//! operations at O(n²) bits — the layout of choice for small dense
//! (sub)graphs, and the basis of several compression schemes
//! (k²-trees partition exactly this matrix).

use gms_core::{CsrGraph, Graph, NodeId};

const WORD_BITS: usize = 64;

/// A dense adjacency matrix over `n` vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdjacencyMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
    arcs: usize,
}

impl AdjacencyMatrix {
    /// Builds from any CSR graph.
    pub fn from_csr(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let words_per_row = n.div_ceil(WORD_BITS);
        let mut bits = vec![0u64; n * words_per_row];
        for u in graph.vertices() {
            let row = u as usize * words_per_row;
            for v in graph.neighbors(u) {
                bits[row + v as usize / WORD_BITS] |= 1u64 << (v as usize % WORD_BITS);
            }
        }
        Self {
            n,
            words_per_row,
            bits,
            arcs: graph.num_arcs(),
        }
    }

    /// The bit row of vertex `u`.
    #[inline]
    pub fn row(&self, u: NodeId) -> &[u64] {
        let start = u as usize * self.words_per_row;
        &self.bits[start..start + self.words_per_row]
    }

    /// Word-parallel common-neighbor count — the AM's signature
    /// operation (`|N(u) ∩ N(v)|` in one popcount sweep).
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> usize {
        self.row(u)
            .iter()
            .zip(self.row(v))
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> CsrGraph {
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::with_capacity(self.arcs);
        for u in 0..self.n as NodeId {
            neighbors.extend(self.neighbors(u));
            offsets.push(neighbors.len());
        }
        CsrGraph::from_parts(offsets, neighbors)
    }

    /// Heap bytes (the O(n²/8) cost the paper's Figure 3 flags).
    pub fn heap_bytes(&self) -> usize {
        self.bits.capacity() * 8
    }
}

impl Graph for AdjacencyMatrix {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn num_arcs(&self) -> usize {
        self.arcs
    }

    fn degree(&self, v: NodeId) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.row(v).iter().enumerate().flat_map(|(wi, &word)| {
            let base = (wi * WORD_BITS) as u32;
            std::iter::successors(
                if word == 0 {
                    None
                } else {
                    Some((word, base + word.trailing_zeros()))
                },
                move |&(w, _)| {
                    let w = w & (w - 1);
                    if w == 0 {
                        None
                    } else {
                        Some((w, base + w.trailing_zeros()))
                    }
                },
            )
            .map(|(_, v)| v)
        })
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.row(u)[v as usize / WORD_BITS] & (1u64 << (v as usize % WORD_BITS)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_access() {
        let g = gms_gen::gnp(120, 0.08, 5);
        let am = AdjacencyMatrix::from_csr(&g);
        assert_eq!(am.to_csr(), g);
        assert_eq!(am.num_vertices(), g.num_vertices());
        assert_eq!(am.num_arcs(), g.num_arcs());
        for v in g.vertices() {
            assert_eq!(am.degree(v), g.degree(v));
            assert_eq!(am.neighbors(v).collect::<Vec<_>>(), g.neighbors_slice(v));
        }
        for u in 0..120u32 {
            for v in 0..120u32 {
                assert_eq!(am.has_edge(u, v), g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn common_neighbors_matches_set_intersection() {
        let g = gms_gen::gnp(90, 0.15, 2);
        let am = AdjacencyMatrix::from_csr(&g);
        use gms_core::{Set, SortedVecSet};
        for (u, v) in [(0u32, 1u32), (5, 50), (10, 11)] {
            let su = SortedVecSet::from_sorted(g.neighbors_slice(u));
            let sv = SortedVecSet::from_sorted(g.neighbors_slice(v));
            assert_eq!(am.common_neighbors(u, v), su.intersect_count(&sv));
        }
    }

    #[test]
    fn word_boundary_vertices() {
        // n = 65: row spills into a second word.
        let g = CsrGraph::from_undirected_edges(65, &[(0, 63), (0, 64), (63, 64)]);
        let am = AdjacencyMatrix::from_csr(&g);
        assert!(am.has_edge(0, 64));
        assert!(am.has_edge(64, 63));
        assert_eq!(am.neighbors(0).collect::<Vec<_>>(), vec![63, 64]);
        assert_eq!(am.common_neighbors(0, 63), 1); // vertex 64
    }

    #[test]
    fn empty_matrix() {
        let g = CsrGraph::from_undirected_edges(0, &[]);
        let am = AdjacencyMatrix::from_csr(&g);
        assert_eq!(am.num_vertices(), 0);
        assert_eq!(am.to_csr(), g);
    }
}
