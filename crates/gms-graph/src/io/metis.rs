//! METIS graph format — the `n m [fmt [ncon]]` header followed by one
//! 1-indexed adjacency line per vertex, used across the
//! DIMACS/METIS/KaHIP partitioning ecosystems.
//!
//! The parser is comment tolerant (`%` lines anywhere), accepts blank
//! lines as degree-0 vertices, understands the optional `fmt` flags
//! (vertex sizes / vertex weights / edge weights) and the optional
//! `ncon` vertex-weight multiplicity, and validates both declared
//! counts: the body must contain exactly `n` vertex lines and the
//! adjacency lists exactly `2m` entries. Weights are parsed (and
//! type-checked) but not kept — the suite mines topology, as the
//! original GMS loaders do.

use super::{GraphIoCause, GraphIoError};
use gms_core::{CsrGraph, Edge, Graph, NodeId};
use std::io::{BufRead, BufReader};
use std::path::Path;

/// The `fmt` field of a METIS header: three binary digits declaring
/// which optional sections each vertex line carries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetisFmt {
    /// Hundreds digit: each vertex line starts with a vertex size.
    pub vertex_sizes: bool,
    /// Tens digit: vertex weights (`ncon` of them) follow the size.
    pub vertex_weights: bool,
    /// Units digit: every adjacency entry is followed by an edge
    /// weight.
    pub edge_weights: bool,
}

/// A parsed METIS header line: `n m [fmt [ncon]]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetisHeader {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges (each appears twice in the body).
    pub m: usize,
    /// Which optional per-line sections are present.
    pub fmt: MetisFmt,
    /// Number of vertex weights per vertex (meaningful only with
    /// `fmt.vertex_weights`; defaults to 1).
    pub ncon: usize,
}

impl MetisHeader {
    /// Whether adjacency entries carry edge weights.
    pub fn edge_weighted(&self) -> bool {
        self.fmt.edge_weights
    }
}

fn header_error(line: usize, detail: &str) -> GraphIoError {
    GraphIoError::at(line, GraphIoCause::MetisHeader(detail.to_string()))
}

/// Parses a METIS header line (without comments) into its parts.
pub fn read_metis_header(text: &str, line: usize) -> Result<MetisHeader, GraphIoError> {
    let fields: Vec<&str> = text.split_whitespace().collect();
    if fields.len() < 2 || fields.len() > 4 {
        return Err(header_error(
            line,
            "expected `n m [fmt [ncon]]` (2 to 4 fields)",
        ));
    }
    let count = |s: &str| -> Result<usize, GraphIoError> {
        s.parse()
            .map_err(|_| header_error(line, "vertex/edge counts must be non-negative integers"))
    };
    let n = count(fields[0])?;
    let m = count(fields[1])?;
    let mut fmt = MetisFmt::default();
    if let Some(&flags) = fields.get(2) {
        if flags.is_empty() || flags.len() > 3 || !flags.bytes().all(|b| b == b'0' || b == b'1') {
            return Err(header_error(line, "fmt must be 1-3 binary digits"));
        }
        let mut digits = [false; 3];
        for (slot, byte) in digits[3 - flags.len()..].iter_mut().zip(flags.bytes()) {
            *slot = byte == b'1';
        }
        fmt = MetisFmt {
            vertex_sizes: digits[0],
            vertex_weights: digits[1],
            edge_weights: digits[2],
        };
    }
    let ncon = match fields.get(3) {
        Some(&s) => {
            let ncon = count(s)?;
            if ncon == 0 {
                return Err(header_error(line, "ncon must be at least 1"));
            }
            ncon
        }
        None => 1,
    };
    Ok(MetisHeader { n, m, fmt, ncon })
}

/// Streams a METIS graph out of any [`BufRead`] source.
pub fn load_metis_from<R: BufRead>(reader: R) -> Result<CsrGraph, GraphIoError> {
    let mut lines = MetisLines::new(reader);

    // Header: the first non-comment, non-blank line.
    let header = loop {
        match lines.next_line()? {
            None => return Err(header_error(lines.line, "file has no header line")),
            Some((_, text)) if text.trim().is_empty() => continue,
            Some((line, text)) => break read_metis_header(text, line)?,
        }
    };

    // Capacity is a hint only — a corrupt header must not be able to
    // trigger a huge allocation before the body disproves it.
    let mut edges: Vec<Edge> = Vec::with_capacity(header.m.saturating_mul(2).min(1 << 20));
    let mut entries = 0usize;
    let mut vertices_seen = 0usize;

    // Body: exactly `n` vertex lines (blank line = degree-0 vertex).
    while vertices_seen < header.n {
        let Some((line, text)) = lines.next_line()? else {
            return Err(GraphIoError::at(
                lines.line,
                GraphIoCause::MetisVertexCount {
                    declared: header.n,
                    actual: vertices_seen,
                },
            ));
        };
        let u = vertices_seen as NodeId;
        vertices_seen += 1;
        let mut fields = text.split_whitespace();

        let weight = |field: Option<&str>| -> Result<(), GraphIoError> {
            match field {
                None => Err(GraphIoError::at(
                    line,
                    GraphIoCause::InvalidWeight("<missing>".to_string()),
                )),
                Some(s) => s.parse::<f64>().map(|_| ()).map_err(|_| {
                    GraphIoError::at(line, GraphIoCause::InvalidWeight(s.to_string()))
                }),
            }
        };
        if header.fmt.vertex_sizes {
            weight(fields.next())?;
        }
        if header.fmt.vertex_weights {
            for _ in 0..header.ncon {
                weight(fields.next())?;
            }
        }
        while let Some(field) = fields.next() {
            let id: u64 = field.parse().map_err(|_| {
                GraphIoError::at(line, GraphIoCause::InvalidVertexId(field.to_string()))
            })?;
            if !(1..=header.n as u64).contains(&id) {
                return Err(GraphIoError::at(
                    line,
                    GraphIoCause::VertexOutOfRange { id, n: header.n },
                ));
            }
            if id == u as u64 + 1 {
                // The format forbids self-loops; accepting one would
                // let a file pass the edge-count check while the
                // builder silently drops the loop.
                return Err(GraphIoError::at(
                    line,
                    GraphIoCause::MetisSelfLoop { vertex: id },
                ));
            }
            if header.fmt.edge_weights {
                weight(fields.next())?;
            }
            entries += 1;
            // 1-indexed on disk, 0-indexed in memory. The builder
            // symmetrizes and deduplicates, so the mirrored entry a
            // valid file carries folds back into one edge.
            edges.push((u, (id - 1) as NodeId));
        }
    }

    // Anything but comments or blank padding after the last vertex
    // line means the header undercounted.
    while let Some((line, text)) = lines.next_line()? {
        if !text.trim().is_empty() {
            return Err(GraphIoError::at(
                line,
                GraphIoCause::MetisVertexCount {
                    declared: header.n,
                    actual: header.n + 1,
                },
            ));
        }
    }

    if entries != header.m.saturating_mul(2) {
        return Err(GraphIoError::new(GraphIoCause::MetisEdgeCount {
            declared: header.m,
            entries,
        }));
    }

    // The raw count matching `2m` is not enough: duplicate entries
    // can compensate for a missing mirror entry. Each undirected
    // edge must appear exactly once in each endpoint's list —
    // distinct arcs, each with its mirror present.
    let mut arcs = edges.clone();
    arcs.sort_unstable();
    let distinct = {
        arcs.dedup();
        arcs.len()
    };
    let symmetric = arcs
        .iter()
        .all(|&(u, v)| arcs.binary_search(&(v, u)).is_ok());
    if distinct != entries || !symmetric {
        return Err(GraphIoError::new(GraphIoCause::MetisEdgeCount {
            declared: header.m,
            entries: distinct,
        }));
    }

    Ok(CsrGraph::from_undirected_edges(header.n, &edges))
}

/// Reads a METIS graph file.
pub fn load_metis<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphIoError> {
    let file = std::fs::File::open(path)?;
    load_metis_from(BufReader::new(file))
}

/// Writes a graph in METIS format: an `n m` header, then one
/// 1-indexed adjacency line per vertex (weights are never written —
/// the suite stores topology only).
pub fn write_metis<W: std::io::Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "{} {}",
        graph.num_vertices(),
        graph.num_edges_undirected()
    )?;
    for v in graph.vertices() {
        // Tokens go straight to the (buffered) writer: no per-vertex
        // or per-neighbor string allocations at Table 7 scale.
        for (i, &w) in graph.neighbors_slice(v).iter().enumerate() {
            if i > 0 {
                write!(writer, " ")?;
            }
            write!(writer, "{}", w + 1)?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Line reader over a METIS body: skips `%` comments, counts every
/// physical line, and reuses one buffer.
struct MetisLines<R: BufRead> {
    reader: R,
    buf: String,
    line: usize,
}

impl<R: BufRead> MetisLines<R> {
    fn new(reader: R) -> Self {
        Self {
            reader,
            buf: String::new(),
            line: 0,
        }
    }

    /// The next non-comment line (blank lines included — they are
    /// meaningful in a METIS body) with its 1-based number, or `None`
    /// at end of input.
    fn next_line(&mut self) -> Result<Option<(usize, &str)>, GraphIoError> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Err(e) => {
                    return Err(GraphIoError::at(self.line + 1, GraphIoCause::Io(e)));
                }
                Ok(0) => return Ok(None),
                Ok(_) => {
                    self.line += 1;
                    if !self.buf.trim_start().starts_with('%') {
                        return Ok(Some((self.line, self.buf.as_str())));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::Graph;

    fn reload(text: &str) -> CsrGraph {
        load_metis_from(text.as_bytes()).unwrap()
    }

    #[test]
    fn parses_the_metis_manual_example_shape() {
        // A triangle plus a pendant vertex, written the METIS way.
        let g = reload("4 4\n2 3\n1 3\n1 2 4\n3\n");
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges_undirected(), 4);
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(1, 2) && g.has_edge(2, 3));
    }

    #[test]
    fn blank_lines_are_degree_zero_vertices() {
        let g = reload("3 1\n2\n1\n\n");
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.degree(2), 0);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn comments_are_tolerated_anywhere() {
        let g = reload("% a comment before the header\n2 1\n% between lines\n2\n1\n% after\n");
        assert_eq!(g.num_edges_undirected(), 1);
    }

    #[test]
    fn weights_are_parsed_and_dropped() {
        // fmt=111: vertex size, one vertex weight, edge weights.
        let with_weights = "3 2 111 1\n5 10 2 7 3 9\n4 20 1 7\n3 30 1 9\n";
        let g = reload(with_weights);
        assert_eq!(g, reload("3 2\n2 3\n1\n1\n"));
    }

    #[test]
    fn multi_constraint_vertex_weights() {
        // fmt=010 with ncon=2: two weights per vertex, no sizes.
        let g = reload("2 1 010 2\n10 11 2\n20 21 1\n");
        assert_eq!(g.num_edges_undirected(), 1);
    }

    #[test]
    fn header_variants_parse() {
        let h = read_metis_header("10 20", 1).unwrap();
        assert_eq!((h.n, h.m), (10, 20));
        assert_eq!(h.fmt, MetisFmt::default());
        let h = read_metis_header("10 20 1", 1).unwrap();
        assert!(h.edge_weighted());
        let h = read_metis_header("10 20 011 3", 1).unwrap();
        assert!(h.fmt.vertex_weights && h.fmt.edge_weights && !h.fmt.vertex_sizes);
        assert_eq!(h.ncon, 3);
    }

    #[test]
    fn roundtrips_through_write_metis() {
        let g = CsrGraph::from_undirected_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        assert_eq!(load_metis_from(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = CsrGraph::from_undirected_edges(0, &[]);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        assert_eq!(load_metis_from(buf.as_slice()).unwrap(), g);
    }
}
