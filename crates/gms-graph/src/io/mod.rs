//! Dataset I/O — the "load graph into memory" stage (pipeline step 1
//! in Figure 2), grown into a multi-format ingestion subsystem so the
//! suite can ingest real SNAP/KONECT-scale datasets (Table 7).
//!
//! Three interchangeable on-disk formats, all converging on the same
//! [`CsrGraph`](gms_core::CsrGraph): whichever format a dataset arrives in, the loaded
//! CSR is byte-identical (same offsets, same targets), so downstream
//! fingerprint-keyed result caches treat the loads as one graph.
//!
//! | format | module | shape | typical source |
//! |---|---|---|---|
//! | edge list | [`edge_list`] | `u v` text lines | SNAP / KONECT / Network-Repository dumps |
//! | METIS | [`metis`] | header + 1-indexed adjacency lines | DIMACS / METIS / KaHIP ecosystems |
//! | `.gcsr` snapshot | [`snapshot`] | versioned, checksummed binary CSR | this suite's own save path |
//!
//! Text loaders stream line by line over any [`std::io::BufRead`]
//! source (a multi-gigabyte dump is never materialized as one
//! `String`); the binary snapshot has both a copying reader and an
//! mmap-backed zero-copy view ([`MmapSnapshot`]).
//!
//! # The `.gcsr` snapshot layout, byte for byte
//!
//! Two body versions share the magic and differ in the version field:
//! **v1** stores the raw CSR arrays, **v2** stores a gap+varint
//! compressed body (see [`snapshot`] for the v2 section internals).
//! All integers are **little-endian**. With `n` vertices and `a`
//! stored arcs (`a = 2m` for an undirected graph saved from its
//! symmetric CSR), a **v1** file is:
//!
//! ```text
//! offset            size       field
//! ------            ----       -----
//! 0                 4          magic, the ASCII bytes "GCSR"
//! 4                 4          format version, u32 (1)
//! 8                 8          n  — vertex count, u64
//! 16                8          a  — stored arc count, u64
//! 24                8          checksum of the offsets section, u64
//! 32                8          checksum of the targets section, u64
//! 40                8*(n+1)    offsets section: n+1 × u64
//! 40 + 8*(n+1)      4*a        targets section: a × u32
//! ```
//!
//! and a **v2** file, with `b = ceil(n/64)` index blocks, `i` index
//! section bytes and `p` payload section bytes, is:
//!
//! ```text
//! offset            size       field
//! ------            ----       -----
//! 0                 4          magic, the ASCII bytes "GCSR"
//! 4                 4          format version, u32 (2)
//! 8                 4          payload scheme, u32 (1 = varint gap)
//! 12                4          flags, u32 (bit 0: locality-reordered)
//! 16                8          n  — vertex count, u64
//! 24                8          a  — stored arc count, u64
//! 32                8          i  — index section length, u64
//! 40                8          p  — payload section length, u64
//! 48                8          checksum of the index section, u64
//! 56                8          checksum of the payload section, u64
//! 64                i          index section:
//!                                b × u64   block payload anchors
//!                                b × u32   block pair-stream starts
//!                                i - 12b   varint (byte_len, degree)
//!                                          pairs, one per vertex
//! 64 + i            p          payload section: gap+varint encoded
//!                              neighborhoods, concatenated per vertex
//! ```
//!
//! The file ends exactly after its last section; a shorter *or*
//! longer file is rejected ([`GraphIoCause::SnapshotSize`]). Each
//! section checksum is FNV-1a 64 ([`section_checksum`]) over the
//! section's encoded bytes. A v1 body must satisfy the
//! [`CsrGraph`](gms_core::CsrGraph) invariants: offsets starting at 0, monotonically
//! non-decreasing, ending at `a`; every target `< n` and every
//! neighborhood sorted ascending. A v2 body is decoded end to end at
//! validation time: every block anchor and block start must agree
//! with the pair stream, every neighborhood must decode to strictly
//! ascending in-range vertices in exactly its declared byte length,
//! and the byte lengths and degrees must sum to `p` and `a`. The v1
//! header is 40 bytes, so the offsets section starts 8-byte aligned
//! and the targets section 4-byte aligned: a page-aligned mmap of the
//! file can serve both sections in place. The v2 payload is a byte
//! stream with no alignment requirement, served from the mapping
//! as-is and decompressed per neighborhood on demand.
//!
//! # Errors
//!
//! Every loader reports failures through the single [`GraphIoError`]
//! type: the 1-based line number where reading stopped (for the text
//! formats) plus a [`GraphIoCause`] saying why. Corrupt input of any
//! kind — truncated files, checksum mismatches, malformed headers,
//! non-numeric tokens — returns a typed error; parsers never panic.

pub mod edge_list;
pub mod metis;
pub mod snapshot;

pub use edge_list::{
    load_undirected, load_undirected_from, read_edge_list, write_edge_list, EdgeListStream,
};
pub use metis::{
    load_metis, load_metis_from, read_metis_header, write_metis, MetisFmt, MetisHeader,
};
pub use snapshot::{
    load_snapshot, load_snapshot_auto, read_snapshot, read_snapshot_auto, save_snapshot,
    save_snapshot_compressed, section_checksum, write_snapshot, write_snapshot_compressed,
    MmapSnapshot, SnapshotGraph, SnapshotNeighbors, GCSR_FLAG_REORDERED, GCSR_HEADER_BYTES,
    GCSR_MAGIC, GCSR_SCHEME_GAP, GCSR_V2_HEADER_BYTES, GCSR_VERSION, GCSR_VERSION_COMPRESSED,
};

/// Why a graph read failed (the cause half of [`GraphIoError`]).
#[derive(Debug)]
pub enum GraphIoCause {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line with fewer than two whitespace-separated fields.
    MissingEndpoint,
    /// A field that should be a vertex ID but does not parse as one.
    InvalidVertexId(String),
    /// A field that should be a (vertex or edge) weight but does not
    /// parse as a number, or a neighbor token whose declared edge
    /// weight is missing.
    InvalidWeight(String),
    /// A missing or malformed METIS header line (`n m [fmt [ncon]]`).
    MetisHeader(String),
    /// The METIS body does not contain the declared number of vertex
    /// lines.
    MetisVertexCount {
        /// Vertex count declared by the header.
        declared: usize,
        /// Vertex lines actually present.
        actual: usize,
    },
    /// The METIS adjacency lists do not encode the declared edge
    /// count `m`: the entry count is not `2m`, or duplicate entries
    /// stand in for a missing mirror entry (each edge must appear
    /// exactly once in each endpoint's list).
    MetisEdgeCount {
        /// Edge count `m` declared by the header.
        declared: usize,
        /// Adjacency entries actually present (expected `2m`; the
        /// *distinct* entry count when the raw count matches but
        /// duplicates or missing mirrors were detected).
        entries: usize,
    },
    /// A METIS adjacency line lists the vertex itself — self-loops
    /// are forbidden by the format.
    MetisSelfLoop {
        /// The 1-indexed vertex, as written.
        vertex: u64,
    },
    /// A vertex reference outside the graph: a METIS adjacency entry
    /// outside `1..=n`, or a snapshot target `>= n`.
    VertexOutOfRange {
        /// The offending vertex reference, as written.
        id: u64,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// The first four bytes are not the `.gcsr` magic.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// A `.gcsr` version this build does not understand.
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// The snapshot's byte length disagrees with its header: the file
    /// is truncated or carries trailing garbage.
    SnapshotSize {
        /// Length implied by the header (or the minimum header size).
        expected: u64,
        /// Length actually present.
        actual: u64,
    },
    /// A section's stored checksum does not match its contents.
    ChecksumMismatch {
        /// Which section (`"offsets"`/`"targets"` for v1,
        /// `"index"`/`"payload"` for v2).
        section: &'static str,
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the section bytes.
        computed: u64,
    },
    /// The snapshot decodes but violates a CSR structural invariant
    /// (offsets not starting at 0, non-monotone offsets, offsets not
    /// spanning the targets, an unsorted or duplicated neighborhood).
    SnapshotFormat {
        /// Which invariant broke.
        detail: &'static str,
    },
}

/// The unified error type of every `gms_graph::io` loader: where the
/// read stopped and why.
#[derive(Debug)]
pub struct GraphIoError {
    /// 1-based line number of the offending line; `None` when the
    /// failure is not attributable to a line (e.g. opening the file,
    /// or any binary-snapshot failure).
    pub line: Option<usize>,
    /// What went wrong.
    pub cause: GraphIoCause,
}

impl GraphIoError {
    pub(crate) fn at(line: usize, cause: GraphIoCause) -> Self {
        Self {
            line: Some(line),
            cause,
        }
    }

    pub(crate) fn new(cause: GraphIoCause) -> Self {
        Self { line: None, cause }
    }
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(line) = self.line {
            write!(f, "line {line}: ")?;
        }
        match &self.cause {
            GraphIoCause::Io(e) => write!(f, "I/O error: {e}"),
            GraphIoCause::MissingEndpoint => {
                write!(f, "edge line needs two vertex IDs")
            }
            GraphIoCause::InvalidVertexId(field) => {
                write!(f, "invalid vertex ID {field:?}")
            }
            GraphIoCause::InvalidWeight(field) => {
                write!(f, "invalid weight {field:?}")
            }
            GraphIoCause::MetisHeader(detail) => {
                write!(f, "malformed METIS header: {detail}")
            }
            GraphIoCause::MetisVertexCount { declared, actual } => write!(
                f,
                "METIS header declares {declared} vertices but the body has {actual} vertex lines"
            ),
            GraphIoCause::MetisEdgeCount { declared, entries } => write!(
                f,
                "METIS header declares {declared} edges but the adjacency lists hold \
                 {entries} entries (expected twice the edge count)"
            ),
            GraphIoCause::MetisSelfLoop { vertex } => {
                write!(
                    f,
                    "METIS adjacency lists a self-loop on vertex {vertex} (forbidden by the format)"
                )
            }
            GraphIoCause::VertexOutOfRange { id, n } => {
                write!(f, "vertex reference {id} outside a graph of {n} vertices")
            }
            GraphIoCause::BadMagic { found } => {
                write!(f, "not a .gcsr snapshot (magic bytes {found:?})")
            }
            GraphIoCause::UnsupportedVersion { found } => write!(
                f,
                "unsupported .gcsr version {found} (this build reads versions \
                 {GCSR_VERSION} and {GCSR_VERSION_COMPRESSED})"
            ),
            GraphIoCause::SnapshotSize { expected, actual } => write!(
                f,
                "snapshot is {actual} bytes but its header implies {expected}"
            ),
            GraphIoCause::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "{section} section checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            GraphIoCause::SnapshotFormat { detail } => {
                write!(f, "snapshot violates a CSR invariant: {detail}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.cause {
            GraphIoCause::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        Self {
            line: None,
            cause: GraphIoCause::Io(e),
        }
    }
}
