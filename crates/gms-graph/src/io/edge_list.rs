//! Whitespace-separated `u v` edge lists — the format of
//! SNAP/KONECT/Network-Repository dumps. `#` and `%` comment lines,
//! any mix of tabs and spaces between fields, CRLF line endings and
//! trailing weight/timestamp columns are all tolerated, streamed line
//! by line over any [`BufRead`] source.

use super::{GraphIoCause, GraphIoError};
use gms_core::{CsrGraph, Edge, Graph, NodeId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// A streaming edge-list parser: an iterator of edges over any
/// [`BufRead`] source. One line buffer is reused for the whole read,
/// so memory stays O(longest line) regardless of file size.
///
/// Two normalizations are applied while streaming, keeping the
/// stream's output consistent with [`CsrGraph::from_undirected_edges`]:
///
/// * any run of field separators — spaces, tabs, or a mix — counts
///   as one separator;
/// * self-loop lines (`7 7`) are skipped, exactly as the CSR builder
///   drops self-loop edges.
///
/// SNAP-style `# Nodes: <n> Edges: <m>` comment headers are
/// recognized on the fly: the declared vertex count is surfaced via
/// [`EdgeListStream::declared_nodes`] so loaders can size the graph
/// even when trailing vertices are isolated (no edge mentions them).
pub struct EdgeListStream<R: BufRead> {
    reader: R,
    buf: String,
    line: usize,
    declared_nodes: Option<usize>,
    max_node_id: Option<NodeId>,
}

impl<R: BufRead> EdgeListStream<R> {
    /// Wraps a buffered reader positioned at the start of an edge
    /// list.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            buf: String::new(),
            line: 0,
            declared_nodes: None,
            max_node_id: None,
        }
    }

    /// 1-based number of the last line read.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The largest vertex ID on any data line read so far —
    /// **including** skipped self-loop lines, so a loader sizing a
    /// graph by ID sees every mentioned vertex (a `5 5` line keeps
    /// contributing vertex 5, exactly as the pre-streaming loader
    /// behaved: the builder drops the loop edge, not the vertex).
    pub fn max_node_id(&self) -> Option<NodeId> {
        self.max_node_id
    }

    /// The vertex count declared by a `# Nodes: <n> ...` comment, if
    /// one has been seen so far. Declarations beyond what a
    /// [`NodeId`] can address are ignored, bounding what a hostile
    /// comment can request to the same worst-case allocation a
    /// 13-byte data line (`0 4294967295`) can already demand — the
    /// header adds no allocation surface the format itself lacks.
    pub fn declared_nodes(&self) -> Option<usize> {
        self.declared_nodes
    }

    /// Records `Nodes: <n>` from a SNAP-style comment line, if
    /// present. The first declaration wins; an unparsable or
    /// unrepresentable count (more vertices than `NodeId` spans) is
    /// ignored rather than trusted with an allocation.
    fn scan_comment(&mut self) {
        if self.declared_nodes.is_some() {
            return;
        }
        let mut fields = self.buf.split_whitespace();
        while let Some(field) = fields.next() {
            if field == "Nodes:" {
                if let Some(n) = fields.next().and_then(|v| v.parse::<usize>().ok()) {
                    if n as u64 <= u64::from(NodeId::MAX) + 1 {
                        self.declared_nodes = Some(n);
                    }
                }
                return;
            }
        }
    }

    /// Parses the current line; `None` means "nothing to emit" (a
    /// comment, a blank line, or a skipped self-loop).
    fn parse_line(&self) -> Option<Result<Edge, GraphIoError>> {
        let text = self.buf.trim();
        if text.is_empty() || text.starts_with('#') || text.starts_with('%') {
            return None;
        }
        // Fields split on any whitespace run: spaces, tabs, or both.
        let mut fields = text.split_whitespace();
        let endpoint = |field: Option<&str>| -> Result<NodeId, GraphIoError> {
            match field {
                None => Err(GraphIoError::at(self.line, GraphIoCause::MissingEndpoint)),
                Some(s) => s.parse().map_err(|_| {
                    GraphIoError::at(self.line, GraphIoCause::InvalidVertexId(s.to_string()))
                }),
            }
        };
        let u = match endpoint(fields.next()) {
            Ok(u) => u,
            Err(e) => return Some(Err(e)),
        };
        let v = match endpoint(fields.next()) {
            Ok(v) => v,
            Err(e) => return Some(Err(e)),
        };
        // Extra fields (weights, timestamps) are tolerated: we keep
        // the topology, as the SNAP loaders of the original suite do.
        // Self-loops are yielded here and filtered in `next`, where
        // their endpoint can still be recorded for graph sizing.
        Some(Ok((u, v)))
    }
}

impl<R: BufRead> Iterator for EdgeListStream<R> {
    type Item = Result<Edge, GraphIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Err(e) => {
                    return Some(Err(GraphIoError {
                        line: Some(self.line + 1),
                        cause: GraphIoCause::Io(e),
                    }))
                }
                Ok(0) => return None,
                Ok(_) => {
                    self.line += 1;
                    let trimmed = self.buf.trim_start();
                    if trimmed.starts_with('#') || trimmed.starts_with('%') {
                        self.scan_comment();
                    }
                    match self.parse_line() {
                        None => {}
                        Some(Err(e)) => return Some(Err(e)),
                        Some(Ok((u, v))) => {
                            let line_max = u.max(v);
                            self.max_node_id =
                                Some(self.max_node_id.map_or(line_max, |m| m.max(line_max)));
                            // Self-loop edges are dropped, matching
                            // the CSR builder's policy; the vertex
                            // itself was recorded above.
                            if u != v {
                                return Some(Ok((u, v)));
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Parses a whitespace-separated edge list from a reader into memory.
/// Vertex IDs may be arbitrary `u32`s; see [`EdgeListStream`] for the
/// line-streaming form this collects from (self-loops are skipped,
/// like the CSR builder drops them).
pub fn read_edge_list<R: Read>(reader: R) -> Result<Vec<Edge>, GraphIoError> {
    EdgeListStream::new(BufReader::new(reader)).collect()
}

/// Streams an undirected graph out of any [`BufRead`] source: edges
/// are consumed line by line (never a whole-file string) and the
/// graph is sized by the largest vertex ID seen — or by a SNAP-style
/// `# Nodes: <n>` header when that declares more (so isolated
/// trailing vertices survive a round trip).
pub fn load_undirected_from<R: BufRead>(reader: R) -> Result<CsrGraph, GraphIoError> {
    let mut edges = Vec::new();
    let mut stream = EdgeListStream::new(reader);
    for edge in &mut stream {
        edges.push(edge?);
    }
    // Size by every vertex mentioned (self-loop lines included), or
    // by the SNAP header when that declares more.
    let mut n = stream.max_node_id().map_or(0, |m| m as usize + 1);
    if let Some(declared) = stream.declared_nodes() {
        n = n.max(declared);
    }
    Ok(CsrGraph::from_undirected_edges(n, &edges))
}

/// Reads an undirected graph from an edge-list file (SNAP style).
pub fn load_undirected<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphIoError> {
    let file = std::fs::File::open(path)?;
    load_undirected_from(BufReader::new(file))
}

/// Writes a SNAP-style `# Nodes: n Edges: m` header, then each
/// undirected edge once as a `u v` line. The header lets
/// [`load_undirected`] restore the exact vertex count even when
/// trailing vertices are isolated.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# Nodes: {} Edges: {}",
        graph.num_vertices(),
        graph.num_edges_undirected()
    )?;
    for (u, v) in graph.edges_undirected() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# SNAP-style comment\n% KONECT-style comment\n\n0 1\n1 2\n  2   0 \n";
        let edges = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn tolerates_tabs_and_crlf() {
        // SNAP dumps are tab-separated and often carry CRLF endings.
        let text = "# Nodes: 3 Edges: 2\r\n0\t1\r\n1\t\t2\r\n";
        let edges = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn mixed_space_and_tab_runs_are_one_separator() {
        // Regression: a run mixing spaces and tabs must separate
        // exactly two fields, not produce phantom empties.
        let text = "0 \t 1\n1\t \t2\n2  \t\t  3\n";
        let edges = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn self_loops_are_skipped_like_the_builder() {
        // Regression: the stream must apply the same self-loop policy
        // as `CsrGraph::from_undirected_edges`, so collecting it and
        // building directly agree.
        let text = "0 1\n1 1\n1 2\n2\t2\n";
        let edges = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
        let g = load_undirected_from(text.as_bytes()).unwrap();
        assert_eq!(g, CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2)]));
    }

    #[test]
    fn self_loop_on_the_max_id_still_sizes_the_graph() {
        // The loop *edge* is dropped but vertex 5 stays, exactly as
        // the builder treats an explicit (5, 5) edge.
        let g = load_undirected_from("0 1\n5 5\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges_undirected(), 1);
        assert_eq!(g, CsrGraph::from_undirected_edges(6, &[(0, 1), (5, 5)]));

        let mut stream = EdgeListStream::new("3 3\n".as_bytes());
        assert!(stream.next().is_none(), "loop edges are not yielded");
        assert_eq!(stream.max_node_id(), Some(3), "but their vertex is seen");
    }

    #[test]
    fn missing_endpoint_reports_line_and_cause() {
        let err = read_edge_list("0 1\n7\n".as_bytes()).unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(matches!(err.cause, GraphIoCause::MissingEndpoint));
    }

    #[test]
    fn invalid_id_reports_offending_field() {
        let err = read_edge_list("0 1\n2 x\n".as_bytes()).unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.to_string().contains("line 2"));
        match err.cause {
            GraphIoCause::InvalidVertexId(field) => assert_eq!(field, "x"),
            other => panic!("unexpected cause: {other:?}"),
        }
    }

    #[test]
    fn stream_resumes_after_comments_and_tracks_lines() {
        let text = "# header\n0 1\n% midway\n1 2\n";
        let mut stream = EdgeListStream::new(text.as_bytes());
        assert_eq!(stream.next().unwrap().unwrap(), (0, 1));
        assert_eq!(stream.line(), 2);
        assert_eq!(stream.next().unwrap().unwrap(), (1, 2));
        assert_eq!(stream.line(), 4);
        assert!(stream.next().is_none());
    }

    #[test]
    fn roundtrip_through_text() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let edges = read_edge_list(buf.as_slice()).unwrap();
        let g2 = CsrGraph::from_undirected_edges(5, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn nodes_header_preserves_isolated_vertices() {
        // Vertices 5..8 have no edges; only the header mentions them.
        let g = CsrGraph::from_undirected_edges(8, &[(0, 1), (2, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("# Nodes: 8 Edges: 2\n"));
        let reloaded = load_undirected_from(text.as_bytes()).unwrap();
        assert_eq!(reloaded, g);
    }

    #[test]
    fn larger_ids_override_a_smaller_nodes_header() {
        let g = load_undirected_from("# Nodes: 2 Edges: 1\n0 9\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn extra_columns_are_ignored() {
        // Weighted edge lists carry a third column; we keep topology.
        let edges = read_edge_list("0 1 0.5\n1 2 3.7\n".as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn load_undirected_sizes_by_max_id() {
        let dir = std::env::temp_dir().join("gms_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");
        std::fs::write(&path, "0 9\n1 2\n").unwrap();
        let g = load_undirected(&path).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges_undirected(), 2);
    }
}
