//! The `.gcsr` binary CSR snapshot — this suite's own save format,
//! built for Table 7-scale datasets: parse a text dump once, snapshot
//! it, and every later run loads the CSR arrays back at disk
//! bandwidth (or serves them straight out of an mmap without copying
//! the targets array at all).
//!
//! See the [module docs](super) for the byte-for-byte layout. Every
//! read path — copying ([`read_snapshot`]/[`load_snapshot`]) and
//! zero-copy ([`MmapSnapshot`]) — runs the same validation: magic,
//! version, exact length, per-section FNV-1a checksums, and the CSR
//! structural invariants (monotone offsets spanning the targets,
//! in-range targets, sorted duplicate-free neighborhoods). A snapshot
//! that passes is safe to hand to every kernel in the suite.

use super::{GraphIoCause, GraphIoError};
use gms_core::{CsrGraph, Graph, NodeId};
use std::io::Write;
use std::path::Path;

/// The four magic bytes opening every snapshot.
pub const GCSR_MAGIC: [u8; 4] = *b"GCSR";

/// The format version this build writes and reads.
pub const GCSR_VERSION: u32 = 1;

/// Fixed header size in bytes: magic + version + two u64 counts +
/// two u64 section checksums.
pub const GCSR_HEADER_BYTES: usize = 40;

/// Incremental FNV-1a 64 state, folded over a section's encoded
/// bytes without materializing the section.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// FNV-1a 64 over a byte section — the checksum function of the
/// `.gcsr` format. Implemented here (it is part of the on-disk
/// contract) rather than borrowed from an in-process hasher whose
/// mixing could drift.
pub fn section_checksum(bytes: &[u8]) -> u64 {
    let mut state = Fnv1a::new();
    state.update(bytes);
    state.0
}

/// Values encoded per chunk while streaming sections out; bounds the
/// transient buffer at ~64 KiB however large the graph is.
const WRITE_CHUNK: usize = 8192;

/// Serializes a graph's CSR arrays into the snapshot layout. Peak
/// extra memory is O(1): checksums are folded in a first pass over
/// the arrays, then the sections stream out through one small
/// reusable buffer — the encoded sections are never materialized.
pub fn write_snapshot<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    let offsets = graph.offsets();
    let targets = graph.adjacency();

    let mut offsets_sum = Fnv1a::new();
    for &offset in offsets {
        offsets_sum.update(&(offset as u64).to_le_bytes());
    }
    let mut targets_sum = Fnv1a::new();
    for &target in targets {
        targets_sum.update(&target.to_le_bytes());
    }

    writer.write_all(&GCSR_MAGIC)?;
    writer.write_all(&GCSR_VERSION.to_le_bytes())?;
    writer.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(targets.len() as u64).to_le_bytes())?;
    writer.write_all(&offsets_sum.0.to_le_bytes())?;
    writer.write_all(&targets_sum.0.to_le_bytes())?;

    let mut buf = Vec::with_capacity(8 * WRITE_CHUNK);
    for chunk in offsets.chunks(WRITE_CHUNK) {
        buf.clear();
        for &offset in chunk {
            buf.extend_from_slice(&(offset as u64).to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    for chunk in targets.chunks(2 * WRITE_CHUNK) {
        buf.clear();
        for &target in chunk {
            buf.extend_from_slice(&target.to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Writes a snapshot file (buffered).
pub fn save_snapshot<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<(), GraphIoError> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    write_snapshot(graph, &mut writer)?;
    writer.flush()?;
    Ok(())
}

/// The validated section geometry of a snapshot byte buffer: where
/// the offsets and targets sections live, with every format and CSR
/// invariant already checked.
struct RawSnapshot {
    n: usize,
    arcs: usize,
    offsets_start: usize,
    targets_start: usize,
}

fn fail(cause: GraphIoCause) -> GraphIoError {
    GraphIoError::new(cause)
}

/// Decodes the `i`-th u64 of a section without materializing it.
#[inline]
fn u64_at(bytes: &[u8], index: usize) -> u64 {
    let at = 8 * index;
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"))
}

/// Decodes the `i`-th u32 of a section without materializing it.
#[inline]
fn u32_at(bytes: &[u8], index: usize) -> u32 {
    let at = 4 * index;
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte slice"))
}

/// Runs the full validation battery over a snapshot byte buffer.
fn validate(bytes: &[u8]) -> Result<RawSnapshot, GraphIoError> {
    if bytes.len() < GCSR_HEADER_BYTES {
        // Too short to even hold a header — but if the start is
        // readable and wrong, say "not a snapshot" instead.
        if bytes.len() >= 4 && bytes[..4] != GCSR_MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&bytes[..4]);
            return Err(fail(GraphIoCause::BadMagic { found }));
        }
        return Err(fail(GraphIoCause::SnapshotSize {
            expected: GCSR_HEADER_BYTES as u64,
            actual: bytes.len() as u64,
        }));
    }
    if bytes[..4] != GCSR_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&bytes[..4]);
        return Err(fail(GraphIoCause::BadMagic { found }));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if version != GCSR_VERSION {
        return Err(fail(GraphIoCause::UnsupportedVersion { found: version }));
    }

    let n_u64 = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let arcs_u64 = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
    let stored_offsets_sum = u64::from_le_bytes(bytes[24..32].try_into().expect("8-byte slice"));
    let stored_targets_sum = u64::from_le_bytes(bytes[32..40].try_into().expect("8-byte slice"));

    // The exact length the header implies, in u128 so a corrupt
    // header cannot overflow the arithmetic.
    let expected = GCSR_HEADER_BYTES as u128 + 8 * (n_u64 as u128 + 1) + 4 * arcs_u64 as u128;
    if bytes.len() as u128 != expected {
        return Err(fail(GraphIoCause::SnapshotSize {
            expected: u64::try_from(expected).unwrap_or(u64::MAX),
            actual: bytes.len() as u64,
        }));
    }
    // The length matched, so both counts fit comfortably in usize.
    let n = n_u64 as usize;
    let arcs = arcs_u64 as usize;
    let offsets_start = GCSR_HEADER_BYTES;
    let targets_start = offsets_start + 8 * (n + 1);
    let offsets_bytes = &bytes[offsets_start..targets_start];
    let targets_bytes = &bytes[targets_start..];

    let computed = section_checksum(offsets_bytes);
    if computed != stored_offsets_sum {
        return Err(fail(GraphIoCause::ChecksumMismatch {
            section: "offsets",
            stored: stored_offsets_sum,
            computed,
        }));
    }
    let computed = section_checksum(targets_bytes);
    if computed != stored_targets_sum {
        return Err(fail(GraphIoCause::ChecksumMismatch {
            section: "targets",
            stored: stored_targets_sum,
            computed,
        }));
    }

    // CSR structural invariants, decoded in place.
    if u64_at(offsets_bytes, 0) != 0 {
        return Err(fail(GraphIoCause::SnapshotFormat {
            detail: "offsets must start at 0",
        }));
    }
    if u64_at(offsets_bytes, n) != arcs as u64 {
        return Err(fail(GraphIoCause::SnapshotFormat {
            detail: "final offset must equal the arc count",
        }));
    }
    // Monotonicity over the WHOLE offset array first: only once every
    // offset is known to be bounded by the final one (= arcs) is it
    // safe to use offsets as indices into the targets section. An
    // interleaved check would walk past the section on a crafted
    // intermediate offset before reaching the pair that disproves it.
    let mut prev = 0u64;
    for v in 1..=n {
        let off = u64_at(offsets_bytes, v);
        if off < prev {
            return Err(fail(GraphIoCause::SnapshotFormat {
                detail: "offsets must be monotonically non-decreasing",
            }));
        }
        prev = off;
    }
    for v in 0..n {
        let lo = u64_at(offsets_bytes, v);
        let hi = u64_at(offsets_bytes, v + 1);
        // Each neighborhood: targets in range, strictly ascending.
        let mut last: Option<u32> = None;
        for i in lo as usize..hi as usize {
            let target = u32_at(targets_bytes, i);
            if target as usize >= n {
                return Err(fail(GraphIoCause::VertexOutOfRange {
                    id: u64::from(target),
                    n,
                }));
            }
            if let Some(previous) = last {
                if target <= previous {
                    return Err(fail(GraphIoCause::SnapshotFormat {
                        detail: "neighborhoods must be sorted and duplicate-free",
                    }));
                }
            }
            last = Some(target);
        }
    }

    Ok(RawSnapshot {
        n,
        arcs,
        offsets_start,
        targets_start,
    })
}

/// Deserializes a snapshot from an in-memory byte buffer into an
/// owned [`CsrGraph`], validating everything first. This path decodes
/// field by field and has no alignment or endianness requirements on
/// the buffer.
pub fn read_snapshot(bytes: &[u8]) -> Result<CsrGraph, GraphIoError> {
    let raw = validate(bytes)?;
    let offsets_bytes = &bytes[raw.offsets_start..raw.targets_start];
    let targets_bytes = &bytes[raw.targets_start..];
    let offsets: Vec<usize> = (0..=raw.n)
        .map(|i| u64_at(offsets_bytes, i) as usize)
        .collect();
    let targets: Vec<NodeId> = (0..raw.arcs).map(|i| u32_at(targets_bytes, i)).collect();
    Ok(CsrGraph::from_parts(offsets, targets))
}

/// Loads a snapshot file through the mmap path and materializes an
/// owned [`CsrGraph`] (one copy of each section; the validation pass
/// reads the mapped bytes exactly once beforehand).
pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphIoError> {
    Ok(MmapSnapshot::open(path)?.to_csr())
}

/// A validated, memory-mapped `.gcsr` snapshot serving the CSR
/// access interface **without copying the targets array**: neighbor
/// slices are handed out straight from the mapped file bytes.
///
/// The offsets section (the small one, `8(n+1)` bytes against `4a`
/// for the targets) is decoded into a `usize` vector at open time —
/// that is what makes `neighbors_slice` a two-load operation instead
/// of a decode. The targets section is reinterpreted in place, which
/// is sound because the mapping is page-aligned (the vendored
/// `memmap2` shim guarantees 8-byte alignment even on its fallback
/// path), the section starts at the 4-aligned offset `40 + 8(n+1)`,
/// and the format is little-endian like every target this suite
/// builds for. [`MmapSnapshot::open`] verifies the alignment anyway
/// and fails closed rather than misread.
///
/// Implements [`Graph`], so trait-generic mining code can run over
/// the mapped file directly; [`MmapSnapshot::to_csr`] materializes an
/// owned graph when one is needed (e.g. to hand to a platform
/// session).
#[derive(Debug)]
pub struct MmapSnapshot {
    map: memmap2::Mmap,
    offsets: Vec<usize>,
    targets_start: usize,
    arcs: usize,
}

impl MmapSnapshot {
    /// Maps a snapshot file and runs the full validation battery
    /// (magic, version, length, checksums, CSR invariants) over the
    /// mapped bytes.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, GraphIoError> {
        let file = std::fs::File::open(path)?;
        // Safety: the map is read-only and private; concurrent
        // truncation of the underlying file is the documented caveat
        // inherited from memmap2.
        let map = unsafe { memmap2::Mmap::map(&file) }?;
        let raw = validate(&map)?;
        if !(map[raw.targets_start..].as_ptr() as usize)
            .is_multiple_of(std::mem::align_of::<NodeId>())
        {
            // Unreachable with the vendored shim; kept so a future
            // swap to real memmap2 can never silently misread.
            return Err(fail(GraphIoCause::SnapshotFormat {
                detail: "targets section is not aligned for in-place access",
            }));
        }
        let offsets_bytes = &map[raw.offsets_start..raw.targets_start];
        let offsets = (0..=raw.n)
            .map(|i| u64_at(offsets_bytes, i) as usize)
            .collect();
        Ok(Self {
            offsets,
            targets_start: raw.targets_start,
            arcs: raw.arcs,
            map,
        })
    }

    /// The targets section, served in place from the mapping.
    pub fn targets(&self) -> &[NodeId] {
        let bytes = &self.map[self.targets_start..];
        // Alignment was verified at open; the length is exact by the
        // size check, so the prefix/suffix are empty.
        let (prefix, targets, _suffix) = unsafe { bytes.align_to::<NodeId>() };
        debug_assert!(prefix.is_empty() && targets.len() == self.arcs);
        targets
    }

    /// The decoded offset array (`n + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The sorted neighborhood of `v`, borrowed from the mapping.
    #[inline]
    pub fn neighbors_slice(&self, v: NodeId) -> &[NodeId] {
        &self.targets()[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Size of the mapped file in bytes.
    pub fn mapped_bytes(&self) -> usize {
        self.map.len()
    }

    /// Materializes an owned [`CsrGraph`] (copies both sections).
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_parts(self.offsets.clone(), self.targets().to_vec())
    }
}

impl Graph for MmapSnapshot {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.arcs
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors_slice(v).iter().copied()
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors_slice(u).binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        CsrGraph::from_undirected_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (0, 4)])
    }

    fn snapshot_bytes(g: &CsrGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(g, &mut buf).unwrap();
        buf
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gms_gcsr_{}_{name}.gcsr", std::process::id()))
    }

    #[test]
    fn roundtrips_in_memory() {
        let g = sample();
        assert_eq!(read_snapshot(&snapshot_bytes(&g)).unwrap(), g);
    }

    #[test]
    fn empty_and_isolated_graphs_roundtrip() {
        for g in [
            CsrGraph::from_undirected_edges(0, &[]),
            CsrGraph::from_undirected_edges(5, &[]),
            CsrGraph::from_undirected_edges(4, &[(0, 1)]),
        ] {
            assert_eq!(read_snapshot(&snapshot_bytes(&g)).unwrap(), g);
        }
    }

    #[test]
    fn layout_matches_the_documented_geometry() {
        let g = sample();
        let bytes = snapshot_bytes(&g);
        assert_eq!(&bytes[..4], b"GCSR");
        assert_eq!(
            bytes.len(),
            GCSR_HEADER_BYTES + 8 * (g.num_vertices() + 1) + 4 * g.num_arcs()
        );
        // Counts land where the layout table says.
        let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let arcs = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        assert_eq!(n as usize, g.num_vertices());
        assert_eq!(arcs as usize, g.num_arcs());
    }

    #[test]
    fn mmap_view_serves_the_graph_in_place() {
        let g = sample();
        let path = temp_path("view");
        save_snapshot(&g, &path).unwrap();
        let snap = MmapSnapshot::open(&path).unwrap();
        assert_eq!(snap.num_vertices(), g.num_vertices());
        assert_eq!(snap.num_arcs(), g.num_arcs());
        for v in g.vertices() {
            assert_eq!(snap.neighbors_slice(v), g.neighbors_slice(v));
            assert_eq!(snap.degree(v), g.degree(v));
        }
        assert!(snap.has_edge(0, 1) && !snap.has_edge(0, 3));
        assert_eq!(snap.to_csr(), g);
        assert_eq!(load_snapshot(&path).unwrap(), g);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checksums_cover_every_section_byte() {
        let g = sample();
        let pristine = snapshot_bytes(&g);
        for index in GCSR_HEADER_BYTES..pristine.len() {
            let mut corrupt = pristine.clone();
            corrupt[index] ^= 0x40;
            let err = read_snapshot(&corrupt).unwrap_err();
            assert!(
                matches!(err.cause, GraphIoCause::ChecksumMismatch { .. }),
                "byte {index}: expected checksum failure, got {err}"
            );
        }
    }

    #[test]
    fn section_checksum_is_fnv1a() {
        // Pinned test vectors so the on-disk contract cannot drift.
        assert_eq!(section_checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(section_checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
