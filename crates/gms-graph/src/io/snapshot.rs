//! The `.gcsr` binary CSR snapshot — this suite's own save format,
//! built for Table 7-scale datasets: parse a text dump once, snapshot
//! it, and every later run loads the CSR arrays back at disk
//! bandwidth (or serves them straight out of an mmap without copying
//! the targets array at all).
//!
//! Two body versions (see the [module docs](super) for the
//! byte-for-byte layouts): **v1** stores the raw CSR arrays, **v2**
//! stores a compressed body — the
//! [`crate::CompressedCsr`] block index and gap+varint
//! payload, written exactly as held in memory. Every read path —
//! copying ([`read_snapshot`]/[`load_snapshot`]) and zero-copy
//! ([`MmapSnapshot`]) — runs the full validation battery for the
//! version it finds: magic, version, exact length, per-section FNV-1a
//! checksums, and the structural invariants (for v1, monotone offsets
//! spanning in-range sorted targets; for v2, a complete structural
//! decode of the index and every neighborhood). A snapshot that
//! passes is safe to hand to every kernel in the suite.
//!
//! A v2 file mmap-opens *without* decompressing: the index (a few
//! bytes per vertex) is decoded to the heap, the payload stays on the
//! mapped pages and neighborhoods are gap-decoded on demand — the
//! resident cost of serving a compressed graph is
//! [`MmapSnapshot::resident_bytes`], not the raw adjacency size.

use super::{GraphIoCause, GraphIoError};
use crate::compress::{gap, varint};
use crate::compressed_csr::{self, CompressedCsr, NbrIndex, SkipIndex, INDEX_BLOCK};
use gms_core::{CsrGraph, Graph, NodeId};
use std::io::Write;
use std::path::Path;

/// The four magic bytes opening every snapshot.
pub const GCSR_MAGIC: [u8; 4] = *b"GCSR";

/// The raw-CSR format version ([`write_snapshot`] writes this).
pub const GCSR_VERSION: u32 = 1;

/// The compressed-payload format version
/// ([`write_snapshot_compressed`] writes this).
pub const GCSR_VERSION_COMPRESSED: u32 = 2;

/// Fixed v1 header size in bytes: magic + version + two u64 counts +
/// two u64 section checksums.
pub const GCSR_HEADER_BYTES: usize = 40;

/// Fixed v2 header size in bytes: magic + version + scheme + flags +
/// four u64 geometry fields + two u64 section checksums.
pub const GCSR_V2_HEADER_BYTES: usize = 64;

/// The only payload scheme defined so far: varint gap encoding.
pub const GCSR_SCHEME_GAP: u32 = 1;

/// v2 header flag bit: the graph was relabeled by a locality ordering
/// before encoding.
pub const GCSR_FLAG_REORDERED: u32 = 1;

/// Incremental FNV-1a 64 state, folded over a section's encoded
/// bytes without materializing the section.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// FNV-1a 64 over a byte section — the checksum function of the
/// `.gcsr` format. Implemented here (it is part of the on-disk
/// contract) rather than borrowed from an in-process hasher whose
/// mixing could drift.
pub fn section_checksum(bytes: &[u8]) -> u64 {
    let mut state = Fnv1a::new();
    state.update(bytes);
    state.0
}

/// Values encoded per chunk while streaming sections out; bounds the
/// transient buffer at ~64 KiB however large the graph is.
const WRITE_CHUNK: usize = 8192;

/// Serializes a graph's CSR arrays into the snapshot layout. Peak
/// extra memory is O(1): checksums are folded in a first pass over
/// the arrays, then the sections stream out through one small
/// reusable buffer — the encoded sections are never materialized.
pub fn write_snapshot<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    let offsets = graph.offsets();
    let targets = graph.adjacency();

    let mut offsets_sum = Fnv1a::new();
    for &offset in offsets {
        offsets_sum.update(&(offset as u64).to_le_bytes());
    }
    let mut targets_sum = Fnv1a::new();
    for &target in targets {
        targets_sum.update(&target.to_le_bytes());
    }

    writer.write_all(&GCSR_MAGIC)?;
    writer.write_all(&GCSR_VERSION.to_le_bytes())?;
    writer.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(targets.len() as u64).to_le_bytes())?;
    writer.write_all(&offsets_sum.0.to_le_bytes())?;
    writer.write_all(&targets_sum.0.to_le_bytes())?;

    let mut buf = Vec::with_capacity(8 * WRITE_CHUNK);
    for chunk in offsets.chunks(WRITE_CHUNK) {
        buf.clear();
        for &offset in chunk {
            buf.extend_from_slice(&(offset as u64).to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    for chunk in targets.chunks(2 * WRITE_CHUNK) {
        buf.clear();
        for &target in chunk {
            buf.extend_from_slice(&target.to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Writes a snapshot file (buffered).
pub fn save_snapshot<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<(), GraphIoError> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    write_snapshot(graph, &mut writer)?;
    writer.flush()?;
    Ok(())
}

/// Serializes a compressed graph into the `.gcsr` v2 layout: the
/// per-vertex index (block anchors ‖ block starts ‖ varint
/// `(byte_len, degree)` pairs) followed by the gap-encoded payload,
/// each section under its own FNV-1a checksum. The payload bytes are
/// written exactly as held in memory, so an mmap of the file can
/// serve them back without re-encoding.
pub fn write_snapshot_compressed<W: Write>(
    graph: &CompressedCsr,
    mut writer: W,
) -> std::io::Result<()> {
    let index = graph.index();
    let payload = graph.payload();

    let mut index_sum = Fnv1a::new();
    for &anchor in &index.anchors {
        index_sum.update(&anchor.to_le_bytes());
    }
    for &start in &index.block_starts {
        index_sum.update(&start.to_le_bytes());
    }
    index_sum.update(&index.pairs);
    let index_len = 8 * index.anchors.len() + 4 * index.block_starts.len() + index.pairs.len();

    let flags = if graph.is_reordered() {
        GCSR_FLAG_REORDERED
    } else {
        0
    };
    writer.write_all(&GCSR_MAGIC)?;
    writer.write_all(&GCSR_VERSION_COMPRESSED.to_le_bytes())?;
    writer.write_all(&GCSR_SCHEME_GAP.to_le_bytes())?;
    writer.write_all(&flags.to_le_bytes())?;
    writer.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(graph.num_arcs() as u64).to_le_bytes())?;
    writer.write_all(&(index_len as u64).to_le_bytes())?;
    writer.write_all(&(payload.len() as u64).to_le_bytes())?;
    writer.write_all(&index_sum.0.to_le_bytes())?;
    writer.write_all(&section_checksum(payload).to_le_bytes())?;

    let mut buf = Vec::with_capacity(8 * WRITE_CHUNK);
    for chunk in index.anchors.chunks(WRITE_CHUNK) {
        buf.clear();
        for &anchor in chunk {
            buf.extend_from_slice(&anchor.to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    for chunk in index.block_starts.chunks(2 * WRITE_CHUNK) {
        buf.clear();
        for &start in chunk {
            buf.extend_from_slice(&start.to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    writer.write_all(&index.pairs)?;
    writer.write_all(payload)?;
    Ok(())
}

/// Writes a v2 compressed snapshot file (buffered).
pub fn save_snapshot_compressed<P: AsRef<Path>>(
    graph: &CompressedCsr,
    path: P,
) -> Result<(), GraphIoError> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    write_snapshot_compressed(graph, &mut writer)?;
    writer.flush()?;
    Ok(())
}

/// The validated section geometry of a snapshot byte buffer: where
/// the offsets and targets sections live, with every format and CSR
/// invariant already checked.
struct RawSnapshot {
    n: usize,
    arcs: usize,
    offsets_start: usize,
    targets_start: usize,
}

fn fail(cause: GraphIoCause) -> GraphIoError {
    GraphIoError::new(cause)
}

/// Decodes the `i`-th u64 of a section without materializing it.
#[inline]
fn u64_at(bytes: &[u8], index: usize) -> u64 {
    let at = 8 * index;
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"))
}

/// Decodes the `i`-th u32 of a section without materializing it.
#[inline]
fn u32_at(bytes: &[u8], index: usize) -> u32 {
    let at = 4 * index;
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte slice"))
}

/// Checks the magic and reads the version field — the dispatch step
/// shared by every read path.
fn snapshot_version(bytes: &[u8]) -> Result<u32, GraphIoError> {
    if bytes.len() >= 4 && bytes[..4] != GCSR_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&bytes[..4]);
        return Err(fail(GraphIoCause::BadMagic { found }));
    }
    if bytes.len() < 8 {
        return Err(fail(GraphIoCause::SnapshotSize {
            expected: GCSR_HEADER_BYTES as u64,
            actual: bytes.len() as u64,
        }));
    }
    Ok(u32::from_le_bytes(
        bytes[4..8].try_into().expect("4-byte slice"),
    ))
}

/// A validated snapshot body of either version.
enum RawBody {
    Raw(RawSnapshot),
    Compressed(RawSnapshotV2),
}

/// Validates a snapshot buffer of any supported version.
fn validate_any(bytes: &[u8]) -> Result<RawBody, GraphIoError> {
    match snapshot_version(bytes)? {
        GCSR_VERSION => Ok(RawBody::Raw(validate(bytes)?)),
        GCSR_VERSION_COMPRESSED => Ok(RawBody::Compressed(validate_v2(bytes)?)),
        found => Err(fail(GraphIoCause::UnsupportedVersion { found })),
    }
}

/// Runs the full validation battery over a v1 (raw CSR) snapshot
/// buffer. The magic and version are already checked by
/// [`snapshot_version`].
fn validate(bytes: &[u8]) -> Result<RawSnapshot, GraphIoError> {
    if bytes.len() < GCSR_HEADER_BYTES {
        return Err(fail(GraphIoCause::SnapshotSize {
            expected: GCSR_HEADER_BYTES as u64,
            actual: bytes.len() as u64,
        }));
    }

    let n_u64 = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
    let arcs_u64 = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
    let stored_offsets_sum = u64::from_le_bytes(bytes[24..32].try_into().expect("8-byte slice"));
    let stored_targets_sum = u64::from_le_bytes(bytes[32..40].try_into().expect("8-byte slice"));

    // The exact length the header implies, in u128 so a corrupt
    // header cannot overflow the arithmetic.
    let expected = GCSR_HEADER_BYTES as u128 + 8 * (n_u64 as u128 + 1) + 4 * arcs_u64 as u128;
    if bytes.len() as u128 != expected {
        return Err(fail(GraphIoCause::SnapshotSize {
            expected: u64::try_from(expected).unwrap_or(u64::MAX),
            actual: bytes.len() as u64,
        }));
    }
    // The length matched, so both counts fit comfortably in usize.
    let n = n_u64 as usize;
    let arcs = arcs_u64 as usize;
    let offsets_start = GCSR_HEADER_BYTES;
    let targets_start = offsets_start + 8 * (n + 1);
    let offsets_bytes = &bytes[offsets_start..targets_start];
    let targets_bytes = &bytes[targets_start..];

    let computed = section_checksum(offsets_bytes);
    if computed != stored_offsets_sum {
        return Err(fail(GraphIoCause::ChecksumMismatch {
            section: "offsets",
            stored: stored_offsets_sum,
            computed,
        }));
    }
    let computed = section_checksum(targets_bytes);
    if computed != stored_targets_sum {
        return Err(fail(GraphIoCause::ChecksumMismatch {
            section: "targets",
            stored: stored_targets_sum,
            computed,
        }));
    }

    // CSR structural invariants, decoded in place.
    if u64_at(offsets_bytes, 0) != 0 {
        return Err(fail(GraphIoCause::SnapshotFormat {
            detail: "offsets must start at 0",
        }));
    }
    if u64_at(offsets_bytes, n) != arcs as u64 {
        return Err(fail(GraphIoCause::SnapshotFormat {
            detail: "final offset must equal the arc count",
        }));
    }
    // Monotonicity over the WHOLE offset array first: only once every
    // offset is known to be bounded by the final one (= arcs) is it
    // safe to use offsets as indices into the targets section. An
    // interleaved check would walk past the section on a crafted
    // intermediate offset before reaching the pair that disproves it.
    let mut prev = 0u64;
    for v in 1..=n {
        let off = u64_at(offsets_bytes, v);
        if off < prev {
            return Err(fail(GraphIoCause::SnapshotFormat {
                detail: "offsets must be monotonically non-decreasing",
            }));
        }
        prev = off;
    }
    for v in 0..n {
        let lo = u64_at(offsets_bytes, v);
        let hi = u64_at(offsets_bytes, v + 1);
        // Each neighborhood: targets in range, strictly ascending.
        let mut last: Option<u32> = None;
        for i in lo as usize..hi as usize {
            let target = u32_at(targets_bytes, i);
            if target as usize >= n {
                return Err(fail(GraphIoCause::VertexOutOfRange {
                    id: u64::from(target),
                    n,
                }));
            }
            if let Some(previous) = last {
                if target <= previous {
                    return Err(fail(GraphIoCause::SnapshotFormat {
                        detail: "neighborhoods must be sorted and duplicate-free",
                    }));
                }
            }
            last = Some(target);
        }
    }

    Ok(RawSnapshot {
        n,
        arcs,
        offsets_start,
        targets_start,
    })
}

/// The validated geometry of a v2 (compressed) snapshot: the decoded
/// per-vertex index plus where the still-encoded payload lives.
struct RawSnapshotV2 {
    index: NbrIndex,
    payload_start: usize,
    arcs: usize,
    reordered: bool,
}

/// Runs the full validation battery over a v2 (compressed) snapshot
/// buffer: header geometry, per-section checksums, then a complete
/// structural decode — every index pair is walked, every block anchor
/// cross-checked against the pair stream, and every neighborhood
/// decoded (strictly ascending, in-range, exactly filling its
/// declared byte length). A buffer that passes is safe to serve
/// without any per-access checks.
fn validate_v2(bytes: &[u8]) -> Result<RawSnapshotV2, GraphIoError> {
    if bytes.len() < GCSR_V2_HEADER_BYTES {
        return Err(fail(GraphIoCause::SnapshotSize {
            expected: GCSR_V2_HEADER_BYTES as u64,
            actual: bytes.len() as u64,
        }));
    }
    let scheme = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    let flags = u32::from_le_bytes(bytes[12..16].try_into().expect("4-byte slice"));
    let n_u64 = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
    let arcs_u64 = u64::from_le_bytes(bytes[24..32].try_into().expect("8-byte slice"));
    let index_len_u64 = u64::from_le_bytes(bytes[32..40].try_into().expect("8-byte slice"));
    let payload_len_u64 = u64::from_le_bytes(bytes[40..48].try_into().expect("8-byte slice"));
    let stored_index_sum = u64::from_le_bytes(bytes[48..56].try_into().expect("8-byte slice"));
    let stored_payload_sum = u64::from_le_bytes(bytes[56..64].try_into().expect("8-byte slice"));

    if scheme != GCSR_SCHEME_GAP {
        return Err(fail(GraphIoCause::SnapshotFormat {
            detail: "unknown compression scheme",
        }));
    }
    if flags & !GCSR_FLAG_REORDERED != 0 {
        return Err(fail(GraphIoCause::SnapshotFormat {
            detail: "unknown header flags",
        }));
    }

    // Exact length in u128 so a corrupt header cannot overflow.
    let expected = GCSR_V2_HEADER_BYTES as u128 + index_len_u64 as u128 + payload_len_u64 as u128;
    if bytes.len() as u128 != expected {
        return Err(fail(GraphIoCause::SnapshotSize {
            expected: u64::try_from(expected).unwrap_or(u64::MAX),
            actual: bytes.len() as u64,
        }));
    }
    // The length matched, so the section lengths fit in usize.
    let index_len = index_len_u64 as usize;
    let index_bytes = &bytes[GCSR_V2_HEADER_BYTES..GCSR_V2_HEADER_BYTES + index_len];
    let payload_bytes = &bytes[GCSR_V2_HEADER_BYTES + index_len..];

    let computed = section_checksum(index_bytes);
    if computed != stored_index_sum {
        return Err(fail(GraphIoCause::ChecksumMismatch {
            section: "index",
            stored: stored_index_sum,
            computed,
        }));
    }
    let computed = section_checksum(payload_bytes);
    if computed != stored_payload_sum {
        return Err(fail(GraphIoCause::ChecksumMismatch {
            section: "payload",
            stored: stored_payload_sum,
            computed,
        }));
    }

    // The block arrays must fit inside the index section (u128: a
    // corrupt n cannot overflow the product).
    let blocks_u128 = (n_u64 as u128).div_ceil(INDEX_BLOCK as u128);
    if 12 * blocks_u128 > index_len as u128 {
        return Err(fail(GraphIoCause::SnapshotFormat {
            detail: "index section too short for its block arrays",
        }));
    }
    let n = n_u64 as usize;
    let blocks = n.div_ceil(INDEX_BLOCK);
    let anchors: Vec<u64> = (0..blocks).map(|i| u64_at(index_bytes, i)).collect();
    let starts_bytes = &index_bytes[8 * blocks..];
    let block_starts: Vec<u32> = (0..blocks).map(|i| u32_at(starts_bytes, i)).collect();
    let pairs = index_bytes[12 * blocks..].to_vec();

    // Structural decode: walk the whole pair stream and every
    // neighborhood once.
    let mut cursor = pairs.as_slice();
    let mut payload_offset = 0u64;
    let mut total_degree = 0u64;
    for v in 0..n {
        if v % INDEX_BLOCK == 0 {
            let b = v / INDEX_BLOCK;
            if anchors[b] != payload_offset {
                return Err(fail(GraphIoCause::SnapshotFormat {
                    detail: "block anchor disagrees with the pair stream",
                }));
            }
            if u64::from(block_starts[b]) != (pairs.len() - cursor.len()) as u64 {
                return Err(fail(GraphIoCause::SnapshotFormat {
                    detail: "block start disagrees with the pair stream",
                }));
            }
        }
        let (Some(byte_len), Some(degree)) = (
            varint::decode_u32(&mut cursor),
            varint::decode_u32(&mut cursor),
        ) else {
            return Err(fail(GraphIoCause::SnapshotFormat {
                detail: "index pair stream is truncated",
            }));
        };
        if payload_offset + u64::from(byte_len) > payload_bytes.len() as u64 {
            return Err(fail(GraphIoCause::SnapshotFormat {
                detail: "payload section too short for its index",
            }));
        }
        let start = payload_offset as usize;
        let mut nbr_cursor = &payload_bytes[start..start + byte_len as usize];
        let mut acc = 0u64;
        for i in 0..degree {
            let Some(gapv) = varint::decode_u32(&mut nbr_cursor) else {
                return Err(fail(GraphIoCause::SnapshotFormat {
                    detail: "truncated neighborhood encoding",
                }));
            };
            if i > 0 && gapv == 0 {
                return Err(fail(GraphIoCause::SnapshotFormat {
                    detail: "neighborhoods must be sorted and duplicate-free",
                }));
            }
            acc = if i == 0 {
                u64::from(gapv)
            } else {
                acc + u64::from(gapv)
            };
            if acc >= n_u64 {
                return Err(fail(GraphIoCause::VertexOutOfRange { id: acc, n }));
            }
        }
        if !nbr_cursor.is_empty() {
            return Err(fail(GraphIoCause::SnapshotFormat {
                detail: "neighborhood byte length disagrees with its encoding",
            }));
        }
        payload_offset += u64::from(byte_len);
        total_degree += u64::from(degree);
    }
    if !cursor.is_empty() {
        return Err(fail(GraphIoCause::SnapshotFormat {
            detail: "index pair stream has trailing bytes",
        }));
    }
    if payload_offset != payload_len_u64 {
        return Err(fail(GraphIoCause::SnapshotFormat {
            detail: "payload section length disagrees with the index",
        }));
    }
    if total_degree != arcs_u64 {
        return Err(fail(GraphIoCause::SnapshotFormat {
            detail: "degree sum disagrees with the arc count",
        }));
    }

    Ok(RawSnapshotV2 {
        index: NbrIndex::from_parts(n, anchors, block_starts, pairs),
        payload_start: GCSR_V2_HEADER_BYTES + index_len,
        arcs: arcs_u64 as usize,
        reordered: flags & GCSR_FLAG_REORDERED != 0,
    })
}

/// A graph loaded from a snapshot of either version, kept in the
/// representation the file stored: raw snapshots stay raw, compressed
/// snapshots stay compressed (serving code decides whether to
/// materialize).
#[derive(Debug)]
pub enum SnapshotGraph {
    /// A v1 snapshot's plain CSR.
    Raw(CsrGraph),
    /// A v2 snapshot's compressed CSR.
    Compressed(CompressedCsr),
}

impl SnapshotGraph {
    /// Materializes a plain CSR whichever variant this is.
    pub fn into_csr(self) -> CsrGraph {
        match self {
            SnapshotGraph::Raw(csr) => csr,
            SnapshotGraph::Compressed(compressed) => compressed.to_csr(),
        }
    }
}

/// Deserializes a snapshot from an in-memory byte buffer into an
/// owned [`CsrGraph`], validating everything first; a v2 snapshot is
/// decompressed. This path decodes field by field and has no
/// alignment or endianness requirements on the buffer.
pub fn read_snapshot(bytes: &[u8]) -> Result<CsrGraph, GraphIoError> {
    Ok(read_snapshot_auto(bytes)?.into_csr())
}

/// Deserializes a snapshot of either version, keeping the stored
/// representation (raw stays raw, compressed stays compressed).
pub fn read_snapshot_auto(bytes: &[u8]) -> Result<SnapshotGraph, GraphIoError> {
    match validate_any(bytes)? {
        RawBody::Raw(raw) => {
            let offsets_bytes = &bytes[raw.offsets_start..raw.targets_start];
            let targets_bytes = &bytes[raw.targets_start..];
            let offsets: Vec<usize> = (0..=raw.n)
                .map(|i| u64_at(offsets_bytes, i) as usize)
                .collect();
            let targets: Vec<NodeId> = (0..raw.arcs).map(|i| u32_at(targets_bytes, i)).collect();
            Ok(SnapshotGraph::Raw(CsrGraph::from_parts(offsets, targets)))
        }
        RawBody::Compressed(raw) => Ok(SnapshotGraph::Compressed(
            CompressedCsr::from_validated_parts(
                raw.index,
                bytes[raw.payload_start..].to_vec(),
                raw.arcs,
                raw.reordered,
            ),
        )),
    }
}

/// Loads a snapshot file through the mmap path and materializes an
/// owned [`CsrGraph`] (one copy of each section; the validation pass
/// reads the mapped bytes exactly once beforehand). A v2 snapshot is
/// decompressed — use [`load_snapshot_auto`] to keep it compressed.
pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphIoError> {
    Ok(MmapSnapshot::open(path)?.to_csr())
}

/// Loads a snapshot file of either version through the mmap path,
/// keeping the stored representation: a v1 file yields a plain CSR, a
/// v2 file yields a [`CompressedCsr`] without ever materializing the
/// raw adjacency.
pub fn load_snapshot_auto<P: AsRef<Path>>(path: P) -> Result<SnapshotGraph, GraphIoError> {
    Ok(MmapSnapshot::open(path)?.into_graph())
}

/// A validated, memory-mapped `.gcsr` snapshot serving the CSR
/// access interface **without copying the targets array**: neighbor
/// slices are handed out straight from the mapped file bytes.
///
/// The offsets section (the small one, `8(n+1)` bytes against `4a`
/// for the targets) is decoded into a `usize` vector at open time —
/// that is what makes `neighbors_slice` a two-load operation instead
/// of a decode. The targets section is reinterpreted in place, which
/// is sound because the mapping is page-aligned (the vendored
/// `memmap2` shim guarantees 8-byte alignment even on its fallback
/// path), the section starts at the 4-aligned offset `40 + 8(n+1)`,
/// and the format is little-endian like every target this suite
/// builds for. [`MmapSnapshot::open`] verifies the alignment anyway
/// and fails closed rather than misread.
///
/// Implements [`Graph`], so trait-generic mining code can run over
/// the mapped file directly; [`MmapSnapshot::to_csr`] materializes an
/// owned graph when one is needed (e.g. to hand to a platform
/// session).
#[derive(Debug)]
pub struct MmapSnapshot {
    map: memmap2::Mmap,
    view: SnapshotView,
}

/// The decoded per-version geometry held alongside the mapping: the
/// small sections live on the heap, the big one (targets for v1, gap
/// payload for v2) is served from the mapped file bytes.
#[derive(Debug)]
enum SnapshotView {
    Raw {
        offsets: Vec<usize>,
        targets_start: usize,
        arcs: usize,
    },
    Compressed {
        index: NbrIndex,
        skips: SkipIndex,
        payload_start: usize,
        arcs: usize,
        reordered: bool,
    },
}

/// The neighbor stream of a mapped snapshot: a plain slice walk for a
/// raw body, an on-the-fly gap decode for a compressed one.
pub enum SnapshotNeighbors<'a> {
    /// Raw targets, borrowed from the mapping.
    Raw(std::iter::Copied<std::slice::Iter<'a, NodeId>>),
    /// Gap-decoded on demand from the mapped payload.
    Gap(gap::GapDecoder<'a>),
}

impl Iterator for SnapshotNeighbors<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self {
            SnapshotNeighbors::Raw(it) => it.next(),
            SnapshotNeighbors::Gap(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SnapshotNeighbors::Raw(it) => it.size_hint(),
            SnapshotNeighbors::Gap(it) => it.size_hint(),
        }
    }
}

impl MmapSnapshot {
    /// Maps a snapshot file and runs the full validation battery for
    /// its version (magic, version, length, checksums, structural
    /// invariants) over the mapped bytes. Both versions open into the
    /// same type; check [`MmapSnapshot::is_compressed`] to see which
    /// body the file stores.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, GraphIoError> {
        let file = std::fs::File::open(path)?;
        // Safety: the map is read-only and private; concurrent
        // truncation of the underlying file is the documented caveat
        // inherited from memmap2.
        let map = unsafe { memmap2::Mmap::map(&file) }?;
        let view = match validate_any(&map)? {
            RawBody::Raw(raw) => {
                if !(map[raw.targets_start..].as_ptr() as usize)
                    .is_multiple_of(std::mem::align_of::<NodeId>())
                {
                    // Unreachable with the vendored shim; kept so a
                    // future swap to real memmap2 can never silently
                    // misread.
                    return Err(fail(GraphIoCause::SnapshotFormat {
                        detail: "targets section is not aligned for in-place access",
                    }));
                }
                let offsets_bytes = &map[raw.offsets_start..raw.targets_start];
                let offsets = (0..=raw.n)
                    .map(|i| u64_at(offsets_bytes, i) as usize)
                    .collect();
                SnapshotView::Raw {
                    offsets,
                    targets_start: raw.targets_start,
                    arcs: raw.arcs,
                }
            }
            RawBody::Compressed(raw) => {
                // The gap payload has no alignment requirement — it
                // is a byte stream — so the mapped section is served
                // as-is; only the small index lives on the heap.
                let skips = SkipIndex::build(&raw.index, &map[raw.payload_start..]);
                SnapshotView::Compressed {
                    index: raw.index,
                    skips,
                    payload_start: raw.payload_start,
                    arcs: raw.arcs,
                    reordered: raw.reordered,
                }
            }
        };
        Ok(Self { map, view })
    }

    /// The format version of the mapped file.
    pub fn version(&self) -> u32 {
        match &self.view {
            SnapshotView::Raw { .. } => GCSR_VERSION,
            SnapshotView::Compressed { .. } => GCSR_VERSION_COMPRESSED,
        }
    }

    /// Whether the mapped file stores a compressed (v2) body.
    pub fn is_compressed(&self) -> bool {
        matches!(self.view, SnapshotView::Compressed { .. })
    }

    /// Whether a v2 body was recorded as locality-reordered at save
    /// time (always `false` for v1).
    pub fn is_reordered(&self) -> bool {
        matches!(
            self.view,
            SnapshotView::Compressed {
                reordered: true,
                ..
            }
        )
    }

    /// The targets section, served in place from the mapping.
    ///
    /// # Panics
    ///
    /// On a compressed (v2) snapshot, which stores no raw targets
    /// array — gate on [`MmapSnapshot::is_compressed`] or use
    /// [`MmapSnapshot::decode_into`]/[`Graph::neighbors`] instead.
    pub fn targets(&self) -> &[NodeId] {
        let SnapshotView::Raw {
            targets_start,
            arcs,
            ..
        } = &self.view
        else {
            panic!("raw targets access on a compressed (v2) snapshot");
        };
        let bytes = &self.map[*targets_start..];
        // Alignment was verified at open; the length is exact by the
        // size check, so the prefix/suffix are empty.
        let (prefix, targets, _suffix) = unsafe { bytes.align_to::<NodeId>() };
        debug_assert!(prefix.is_empty() && targets.len() == *arcs);
        targets
    }

    /// The decoded offset array (`n + 1` entries).
    ///
    /// # Panics
    ///
    /// On a compressed (v2) snapshot (see [`MmapSnapshot::targets`]).
    pub fn offsets(&self) -> &[usize] {
        let SnapshotView::Raw { offsets, .. } = &self.view else {
            panic!("raw offsets access on a compressed (v2) snapshot");
        };
        offsets
    }

    /// The sorted neighborhood of `v`, borrowed from the mapping.
    ///
    /// # Panics
    ///
    /// On a compressed (v2) snapshot (see [`MmapSnapshot::targets`]).
    #[inline]
    pub fn neighbors_slice(&self, v: NodeId) -> &[NodeId] {
        let SnapshotView::Raw { offsets, .. } = &self.view else {
            panic!("raw neighborhood access on a compressed (v2) snapshot");
        };
        &self.targets()[offsets[v as usize]..offsets[v as usize + 1]]
    }

    /// Decodes the neighborhood of `v` into `out`, clearing it first —
    /// the version-independent access path: a slice copy for a raw
    /// body, a gap decode for a compressed one. Allocation-free once
    /// `out` has grown to the maximum degree.
    #[inline]
    pub fn decode_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        match &self.view {
            SnapshotView::Raw { .. } => {
                out.clear();
                out.extend_from_slice(self.neighbors_slice(v));
            }
            SnapshotView::Compressed {
                index,
                payload_start,
                ..
            } => {
                let (start, end, degree) = index.locate(v as usize);
                let payload = &self.map[*payload_start..];
                gap::decode_into(&payload[start..end], degree, out).expect("validated payload");
            }
        }
    }

    /// Size of the mapped file in bytes.
    pub fn mapped_bytes(&self) -> usize {
        self.map.len()
    }

    /// Heap bytes the view holds on top of the mapping (decoded
    /// offsets for v1; neighborhood index and skip samples for v2) —
    /// the resident cost of serving this snapshot, excluding whatever
    /// mapped pages the OS keeps warm.
    pub fn resident_bytes(&self) -> usize {
        match &self.view {
            SnapshotView::Raw { offsets, .. } => offsets.len() * std::mem::size_of::<usize>(),
            SnapshotView::Compressed { index, skips, .. } => {
                index.heap_bytes() + skips.heap_bytes()
            }
        }
    }

    /// Materializes an owned [`CsrGraph`] (copies — and for v2
    /// decodes — both sections).
    pub fn to_csr(&self) -> CsrGraph {
        match &self.view {
            SnapshotView::Raw { offsets, .. } => {
                CsrGraph::from_parts(offsets.clone(), self.targets().to_vec())
            }
            SnapshotView::Compressed {
                index,
                payload_start,
                arcs,
                ..
            } => {
                let payload = &self.map[*payload_start..];
                let mut offsets = Vec::with_capacity(index.len() + 1);
                offsets.push(0usize);
                let mut neighbors: Vec<NodeId> = Vec::with_capacity(*arcs);
                index.for_each(|_, start, end, degree| {
                    let mut section = &payload[start..end];
                    gap::decode_append(&mut section, degree, &mut neighbors)
                        .expect("validated payload");
                    offsets.push(neighbors.len());
                });
                CsrGraph::from_parts(offsets, neighbors)
            }
        }
    }

    /// Converts into an owned graph in the representation the file
    /// stored: raw stays raw, compressed stays compressed (one copy of
    /// the payload; the decoded index and skip samples move over).
    pub fn into_graph(self) -> SnapshotGraph {
        match self.view {
            SnapshotView::Raw { .. } => SnapshotGraph::Raw(self.to_csr()),
            SnapshotView::Compressed {
                index,
                skips,
                payload_start,
                arcs,
                reordered,
            } => SnapshotGraph::Compressed(CompressedCsr::assemble(
                index,
                skips,
                self.map[payload_start..].to_vec(),
                arcs,
                reordered,
            )),
        }
    }
}

impl Graph for MmapSnapshot {
    #[inline]
    fn num_vertices(&self) -> usize {
        match &self.view {
            SnapshotView::Raw { offsets, .. } => offsets.len() - 1,
            SnapshotView::Compressed { index, .. } => index.len(),
        }
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        match &self.view {
            SnapshotView::Raw { arcs, .. } | SnapshotView::Compressed { arcs, .. } => *arcs,
        }
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        match &self.view {
            SnapshotView::Raw { offsets, .. } => offsets[v as usize + 1] - offsets[v as usize],
            SnapshotView::Compressed { index, .. } => index.locate(v as usize).2,
        }
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        match &self.view {
            SnapshotView::Raw { .. } => {
                SnapshotNeighbors::Raw(self.neighbors_slice(v).iter().copied())
            }
            SnapshotView::Compressed {
                index,
                payload_start,
                ..
            } => {
                let (start, end, degree) = index.locate(v as usize);
                let payload = &self.map[*payload_start..];
                SnapshotNeighbors::Gap(gap::GapDecoder::new(&payload[start..end], degree))
            }
        }
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        match &self.view {
            SnapshotView::Raw { .. } => self.neighbors_slice(u).binary_search(&v).is_ok(),
            SnapshotView::Compressed {
                index,
                skips,
                payload_start,
                ..
            } => compressed_csr::probe_edge(index, skips, &self.map[*payload_start..], u, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        CsrGraph::from_undirected_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (0, 4)])
    }

    fn snapshot_bytes(g: &CsrGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(g, &mut buf).unwrap();
        buf
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gms_gcsr_{}_{name}.gcsr", std::process::id()))
    }

    #[test]
    fn roundtrips_in_memory() {
        let g = sample();
        assert_eq!(read_snapshot(&snapshot_bytes(&g)).unwrap(), g);
    }

    #[test]
    fn empty_and_isolated_graphs_roundtrip() {
        for g in [
            CsrGraph::from_undirected_edges(0, &[]),
            CsrGraph::from_undirected_edges(5, &[]),
            CsrGraph::from_undirected_edges(4, &[(0, 1)]),
        ] {
            assert_eq!(read_snapshot(&snapshot_bytes(&g)).unwrap(), g);
        }
    }

    #[test]
    fn layout_matches_the_documented_geometry() {
        let g = sample();
        let bytes = snapshot_bytes(&g);
        assert_eq!(&bytes[..4], b"GCSR");
        assert_eq!(
            bytes.len(),
            GCSR_HEADER_BYTES + 8 * (g.num_vertices() + 1) + 4 * g.num_arcs()
        );
        // Counts land where the layout table says.
        let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let arcs = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        assert_eq!(n as usize, g.num_vertices());
        assert_eq!(arcs as usize, g.num_arcs());
    }

    #[test]
    fn mmap_view_serves_the_graph_in_place() {
        let g = sample();
        let path = temp_path("view");
        save_snapshot(&g, &path).unwrap();
        let snap = MmapSnapshot::open(&path).unwrap();
        assert_eq!(snap.num_vertices(), g.num_vertices());
        assert_eq!(snap.num_arcs(), g.num_arcs());
        for v in g.vertices() {
            assert_eq!(snap.neighbors_slice(v), g.neighbors_slice(v));
            assert_eq!(snap.degree(v), g.degree(v));
        }
        assert!(snap.has_edge(0, 1) && !snap.has_edge(0, 3));
        assert_eq!(snap.to_csr(), g);
        assert_eq!(load_snapshot(&path).unwrap(), g);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checksums_cover_every_section_byte() {
        let g = sample();
        let pristine = snapshot_bytes(&g);
        for index in GCSR_HEADER_BYTES..pristine.len() {
            let mut corrupt = pristine.clone();
            corrupt[index] ^= 0x40;
            let err = read_snapshot(&corrupt).unwrap_err();
            assert!(
                matches!(err.cause, GraphIoCause::ChecksumMismatch { .. }),
                "byte {index}: expected checksum failure, got {err}"
            );
        }
    }

    #[test]
    fn section_checksum_is_fnv1a() {
        // Pinned test vectors so the on-disk contract cannot drift.
        assert_eq!(section_checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(section_checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    fn bigger_sample() -> CsrGraph {
        let mut edges = Vec::new();
        for v in 0..300u32 {
            edges.push((v, (v + 1) % 300));
            edges.push((v, (v + 9) % 300));
            if v % 4 == 0 {
                edges.push((0, v)); // make vertex 0 a hub
            }
        }
        CsrGraph::from_undirected_edges(300, &edges)
    }

    fn v2_bytes(g: &CsrGraph) -> Vec<u8> {
        let compressed = CompressedCsr::from_csr(g);
        let mut buf = Vec::new();
        write_snapshot_compressed(&compressed, &mut buf).unwrap();
        buf
    }

    #[test]
    fn v2_layout_matches_the_documented_geometry() {
        let g = bigger_sample();
        let compressed = CompressedCsr::from_csr(&g);
        let mut bytes = Vec::new();
        write_snapshot_compressed(&compressed, &mut bytes).unwrap();
        assert_eq!(&bytes[..4], b"GCSR");
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let scheme = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let flags = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let n = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let arcs = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let index_len = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
        let payload_len = u64::from_le_bytes(bytes[40..48].try_into().unwrap());
        assert_eq!(version, GCSR_VERSION_COMPRESSED);
        assert_eq!(scheme, GCSR_SCHEME_GAP);
        assert_eq!(flags, 0);
        assert_eq!(n as usize, g.num_vertices());
        assert_eq!(arcs as usize, g.num_arcs());
        assert_eq!(payload_len as usize, compressed.payload().len());
        assert_eq!(
            bytes.len() as u64,
            GCSR_V2_HEADER_BYTES as u64 + index_len + payload_len
        );
    }

    #[test]
    fn v2_roundtrips_and_both_versions_auto_detect() {
        let g = bigger_sample();
        // Buffered path decompresses back to the same CSR.
        assert_eq!(read_snapshot(&v2_bytes(&g)).unwrap(), g);
        // Auto path keeps the stored representation per version.
        match read_snapshot_auto(&v2_bytes(&g)).unwrap() {
            SnapshotGraph::Compressed(c) => assert_eq!(c.to_csr(), g),
            SnapshotGraph::Raw(_) => panic!("v2 must stay compressed"),
        }
        match read_snapshot_auto(&snapshot_bytes(&g)).unwrap() {
            SnapshotGraph::Raw(csr) => assert_eq!(csr, g),
            SnapshotGraph::Compressed(_) => panic!("v1 must stay raw"),
        }
    }

    #[test]
    fn v2_mmap_serves_the_graph_without_materializing() {
        let g = bigger_sample();
        let compressed = CompressedCsr::from_csr(&g);
        let path = temp_path("v2_view");
        save_snapshot_compressed(&compressed, &path).unwrap();
        let snap = MmapSnapshot::open(&path).unwrap();
        assert!(snap.is_compressed() && !snap.is_reordered());
        assert_eq!(snap.version(), GCSR_VERSION_COMPRESSED);
        assert_eq!(snap.num_vertices(), g.num_vertices());
        assert_eq!(snap.num_arcs(), g.num_arcs());
        // The resident cost is the index, far below the raw arrays.
        assert!(snap.resident_bytes() < g.heap_bytes() / 4);
        let mut scratch = Vec::new();
        for v in g.vertices() {
            assert_eq!(snap.degree(v), g.degree(v));
            snap.decode_into(v, &mut scratch);
            assert_eq!(scratch.as_slice(), g.neighbors_slice(v));
            let streamed: Vec<NodeId> = snap.neighbors(v).collect();
            assert_eq!(streamed.as_slice(), g.neighbors_slice(v));
        }
        for (u, v) in [(0u32, 1u32), (0, 4), (1, 2), (5, 250), (7, 133)] {
            assert_eq!(snap.has_edge(u, v), g.has_edge(u, v), "has_edge({u},{v})");
        }
        assert_eq!(snap.to_csr(), g);
        // Consuming conversion keeps the compressed representation.
        match snap.into_graph() {
            SnapshotGraph::Compressed(c) => assert_eq!(c.to_csr(), g),
            SnapshotGraph::Raw(_) => panic!("v2 must stay compressed"),
        }
        assert_eq!(load_snapshot(&path).unwrap(), g);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v2_preserves_the_reordered_flag() {
        let g = bigger_sample();
        let rank = crate::transform::Rank::identity(g.num_vertices());
        let compressed = CompressedCsr::from_csr_ordered(&g, &rank);
        assert!(compressed.is_reordered());
        let mut buf = Vec::new();
        write_snapshot_compressed(&compressed, &mut buf).unwrap();
        let flags = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        assert_eq!(flags, GCSR_FLAG_REORDERED);
        match read_snapshot_auto(&buf).unwrap() {
            SnapshotGraph::Compressed(c) => assert!(c.is_reordered()),
            SnapshotGraph::Raw(_) => panic!("v2 must stay compressed"),
        }
    }

    #[test]
    fn v2_checksums_cover_every_section_byte() {
        let g = sample();
        let pristine = v2_bytes(&g);
        for index in GCSR_V2_HEADER_BYTES..pristine.len() {
            let mut corrupt = pristine.clone();
            corrupt[index] ^= 0x40;
            let err = read_snapshot(&corrupt).unwrap_err();
            assert!(
                matches!(err.cause, GraphIoCause::ChecksumMismatch { .. }),
                "byte {index}: expected checksum failure, got {err}"
            );
        }
    }
}
