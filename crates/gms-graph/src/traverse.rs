//! Traversal utilities: BFS, connected components, and diameter
//! estimation. The paper excludes BFS-style algorithms from the GMS
//! *benchmark* scope (§4.4) but its dataset methodology (§4.2) selects
//! graphs by diameter, and several kernels (clustering, min-cut
//! verification) need component structure — these helpers serve those
//! roles.

use gms_core::{CsrGraph, Graph, NodeId};
use std::collections::VecDeque;

/// BFS distances from `source`; unreachable vertices get `u32::MAX`.
pub fn bfs_distances(graph: &CsrGraph, source: NodeId) -> Vec<u32> {
    let n = graph.num_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut queue = VecDeque::with_capacity(n / 4 + 1);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for w in graph.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Connected components: returns `(component_id per vertex, count)`,
/// with IDs dense in `0..count` assigned in order of smallest member.
pub fn connected_components(graph: &CsrGraph) -> (Vec<u32>, usize) {
    let n = graph.num_vertices();
    let mut component = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as NodeId {
        if component[start as usize] != u32::MAX {
            continue;
        }
        component[start as usize] = next;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for w in graph.neighbors(v) {
                if component[w as usize] == u32::MAX {
                    component[w as usize] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    (component, next as usize)
}

/// Size of the largest connected component.
pub fn largest_component_size(graph: &CsrGraph) -> usize {
    let (component, count) = connected_components(graph);
    let mut sizes = vec![0usize; count];
    for &c in &component {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// Pseudo-diameter by double-sweep BFS: a cheap lower bound on the
/// diameter of the component containing `seed` (exact on trees, and
/// the standard estimator the dataset table's "high/low diameter"
/// classification needs).
pub fn pseudo_diameter(graph: &CsrGraph, seed: NodeId) -> u32 {
    let first = bfs_distances(graph, seed);
    let (far, d1) = farthest(&first);
    if d1 == 0 {
        return 0;
    }
    let second = bfs_distances(graph, far);
    farthest(&second).1
}

fn farthest(dist: &[u32]) -> (NodeId, u32) {
    let mut best = (0 as NodeId, 0u32);
    for (v, &d) in dist.iter().enumerate() {
        if d != u32::MAX && d > best.1 {
            best = (v as NodeId, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_on_path() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let dist = bfs_distances(&g, 0);
        assert_eq!(dist, vec![0, 1, 2, 3, u32::MAX]);
    }

    #[test]
    fn components_and_sizes() {
        let g = CsrGraph::from_undirected_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (component, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(component[0], component[2]);
        assert_eq!(component[3], component[4]);
        assert_ne!(component[0], component[3]);
        assert_ne!(component[3], component[5]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn pseudo_diameter_of_path_is_exact() {
        let mut edges = Vec::new();
        for v in 0..9u32 {
            edges.push((v, v + 1));
        }
        let g = CsrGraph::from_undirected_edges(10, &edges);
        // Start anywhere: double sweep finds the full path length.
        assert_eq!(pseudo_diameter(&g, 4), 9);
    }

    #[test]
    fn grid_diameter_far_exceeds_clique_diameter() {
        // The §4.2 road-vs-social diameter contrast.
        let grid = gms_gen::grid(12, 12);
        let clique = gms_gen::complete(144);
        assert!(pseudo_diameter(&grid, 0) >= 22);
        assert_eq!(pseudo_diameter(&clique, 0), 1);
    }

    #[test]
    fn isolated_vertex_diameter_zero() {
        let g = CsrGraph::from_undirected_edges(3, &[]);
        assert_eq!(pseudo_diameter(&g, 1), 0);
    }
}
