//! Edge-list text I/O — the "load graph into memory" stage (pipeline
//! step 1 in Figure 2). Supports the whitespace-separated `u v` format
//! used by SNAP/KONECT/Network-Repository dumps — `#` and `%` comment
//! lines, tab or space separation, CRLF line endings, trailing weight
//! columns — streamed line by line over any [`BufRead`] source, so a
//! multi-gigabyte dump is never materialized as one `String`.
//!
//! All loaders report failures through the single [`GraphIoError`]
//! type: the 1-based line number where reading stopped plus a
//! [`GraphIoCause`] saying why.

use gms_core::{CsrGraph, Edge, NodeId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Why an edge-list read failed (the cause half of [`GraphIoError`]).
#[derive(Debug)]
pub enum GraphIoCause {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line with fewer than two whitespace-separated fields.
    MissingEndpoint,
    /// A field that should be a vertex ID but does not parse as one.
    InvalidVertexId(String),
}

/// The unified error type of every `gms_graph::io` loader: where the
/// read stopped and why.
#[derive(Debug)]
pub struct GraphIoError {
    /// 1-based line number of the offending line; `None` when the
    /// failure is not attributable to a line (e.g. opening the file).
    pub line: Option<usize>,
    /// What went wrong.
    pub cause: GraphIoCause,
}

impl GraphIoError {
    fn at(line: usize, cause: GraphIoCause) -> Self {
        Self {
            line: Some(line),
            cause,
        }
    }
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(line) = self.line {
            write!(f, "line {line}: ")?;
        }
        match &self.cause {
            GraphIoCause::Io(e) => write!(f, "I/O error: {e}"),
            GraphIoCause::MissingEndpoint => {
                write!(f, "edge line needs two vertex IDs")
            }
            GraphIoCause::InvalidVertexId(field) => {
                write!(f, "invalid vertex ID {field:?}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.cause {
            GraphIoCause::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        Self {
            line: None,
            cause: GraphIoCause::Io(e),
        }
    }
}

/// A streaming edge-list parser: an iterator of edges over any
/// [`BufRead`] source. One line buffer is reused for the whole read,
/// so memory stays O(longest line) regardless of file size.
pub struct EdgeListStream<R: BufRead> {
    reader: R,
    buf: String,
    line: usize,
}

impl<R: BufRead> EdgeListStream<R> {
    /// Wraps a buffered reader positioned at the start of an edge
    /// list.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            buf: String::new(),
            line: 0,
        }
    }

    /// 1-based number of the last line read.
    pub fn line(&self) -> usize {
        self.line
    }

    fn parse_line(&self) -> Option<Result<Edge, GraphIoError>> {
        let text = self.buf.trim();
        if text.is_empty() || text.starts_with('#') || text.starts_with('%') {
            return None;
        }
        // Fields split on any whitespace run: spaces, tabs, or both.
        let mut fields = text.split_whitespace();
        let endpoint = |field: Option<&str>| -> Result<NodeId, GraphIoError> {
            match field {
                None => Err(GraphIoError::at(self.line, GraphIoCause::MissingEndpoint)),
                Some(s) => s.parse().map_err(|_| {
                    GraphIoError::at(self.line, GraphIoCause::InvalidVertexId(s.to_string()))
                }),
            }
        };
        let u = endpoint(fields.next());
        let v = endpoint(fields.next());
        // Extra fields (weights, timestamps) are tolerated: we keep
        // the topology, as the SNAP loaders of the original suite do.
        Some(u.and_then(|u| v.map(|v| (u, v))))
    }
}

impl<R: BufRead> Iterator for EdgeListStream<R> {
    type Item = Result<Edge, GraphIoError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Err(e) => {
                    return Some(Err(GraphIoError {
                        line: Some(self.line + 1),
                        cause: GraphIoCause::Io(e),
                    }))
                }
                Ok(0) => return None,
                Ok(_) => {
                    self.line += 1;
                    if let Some(item) = self.parse_line() {
                        return Some(item);
                    }
                }
            }
        }
    }
}

/// Parses a whitespace-separated edge list from a reader into memory.
/// Vertex IDs may be arbitrary `u32`s; see [`EdgeListStream`] for the
/// line-streaming form this collects from.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Vec<Edge>, GraphIoError> {
    EdgeListStream::new(BufReader::new(reader)).collect()
}

/// Streams an undirected graph out of any [`BufRead`] source: edges
/// are consumed line by line (never a whole-file string) and the
/// graph is sized by the largest vertex ID seen.
pub fn load_undirected_from<R: BufRead>(reader: R) -> Result<CsrGraph, GraphIoError> {
    let mut edges = Vec::new();
    let mut n = 0usize;
    for edge in EdgeListStream::new(reader) {
        let (u, v) = edge?;
        n = n.max(u.max(v) as usize + 1);
        edges.push((u, v));
    }
    Ok(CsrGraph::from_undirected_edges(n, &edges))
}

/// Reads an undirected graph from an edge-list file (SNAP style).
pub fn load_undirected<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphIoError> {
    let file = std::fs::File::open(path)?;
    load_undirected_from(BufReader::new(file))
}

/// Writes each undirected edge once as `u v` lines.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    for (u, v) in graph.edges_undirected() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::Graph;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# SNAP-style comment\n% KONECT-style comment\n\n0 1\n1 2\n  2   0 \n";
        let edges = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn tolerates_tabs_and_crlf() {
        // SNAP dumps are tab-separated and often carry CRLF endings.
        let text = "# Nodes: 3 Edges: 2\r\n0\t1\r\n1\t\t2\r\n";
        let edges = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn missing_endpoint_reports_line_and_cause() {
        let err = read_edge_list("0 1\n7\n".as_bytes()).unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(matches!(err.cause, GraphIoCause::MissingEndpoint));
    }

    #[test]
    fn invalid_id_reports_offending_field() {
        let err = read_edge_list("0 1\n2 x\n".as_bytes()).unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.to_string().contains("line 2"));
        match err.cause {
            GraphIoCause::InvalidVertexId(field) => assert_eq!(field, "x"),
            other => panic!("unexpected cause: {other:?}"),
        }
    }

    #[test]
    fn stream_resumes_after_comments_and_tracks_lines() {
        let text = "# header\n0 1\n% midway\n1 2\n";
        let mut stream = EdgeListStream::new(text.as_bytes());
        assert_eq!(stream.next().unwrap().unwrap(), (0, 1));
        assert_eq!(stream.line(), 2);
        assert_eq!(stream.next().unwrap().unwrap(), (1, 2));
        assert_eq!(stream.line(), 4);
        assert!(stream.next().is_none());
    }

    #[test]
    fn roundtrip_through_text() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let edges = read_edge_list(buf.as_slice()).unwrap();
        let g2 = CsrGraph::from_undirected_edges(5, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn extra_columns_are_ignored() {
        // Weighted edge lists carry a third column; we keep topology.
        let edges = read_edge_list("0 1 0.5\n1 2 3.7\n".as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn load_undirected_sizes_by_max_id() {
        let dir = std::env::temp_dir().join("gms_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");
        std::fs::write(&path, "0 9\n1 2\n").unwrap();
        let g = load_undirected(&path).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges_undirected(), 2);
    }
}
