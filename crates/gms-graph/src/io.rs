//! Edge-list text I/O — the "load graph into memory" stage ( pipeline
//! step 1 in Figure 2). Supports the whitespace-separated `u v` format
//! used by SNAP/KONECT/Network-Repository dumps, with `#` and `%`
//! comment lines.

use gms_core::{CsrGraph, Edge, NodeId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised while reading an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor `u v`.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, text } => {
                write!(f, "cannot parse edge on line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses a whitespace-separated edge list from a reader.
/// Vertex IDs may be arbitrary `u32`s; the graph is sized by the
/// largest ID seen.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Vec<Edge>, IoError> {
    let mut edges = Vec::new();
    let mut buf = String::new();
    let mut reader = BufReader::new(reader);
    let mut line_no = 0usize;
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |s: Option<&str>| -> Option<NodeId> { s?.parse().ok() };
        match (parse(parts.next()), parse(parts.next())) {
            (Some(u), Some(v)) => edges.push((u, v)),
            _ => {
                return Err(IoError::Parse {
                    line: line_no,
                    text: line.to_string(),
                });
            }
        }
    }
    Ok(edges)
}

/// Reads an undirected graph from an edge-list file.
pub fn load_undirected<P: AsRef<Path>>(path: P) -> Result<CsrGraph, IoError> {
    let file = std::fs::File::open(path)?;
    let edges = read_edge_list(file)?;
    let n = edges
        .iter()
        .map(|&(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0);
    Ok(CsrGraph::from_undirected_edges(n, &edges))
}

/// Writes each undirected edge once as `u v` lines.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    for (u, v) in graph.edges_undirected() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gms_core::Graph;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# SNAP-style comment\n% KONECT-style comment\n\n0 1\n1 2\n  2   0 \n";
        let edges = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = read_edge_list("0 1\nnot an edge\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn roundtrip_through_text() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (3, 4), (0, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let edges = read_edge_list(buf.as_slice()).unwrap();
        let g2 = CsrGraph::from_undirected_edges(5, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn extra_columns_are_ignored() {
        // Weighted edge lists carry a third column; we keep topology.
        let edges = read_edge_list("0 1 0.5\n1 2 3.7\n".as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn load_undirected_sizes_by_max_id() {
        let dir = std::env::temp_dir().join("gms_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");
        std::fs::write(&path, "0 9\n1 2\n").unwrap();
        let g = load_undirected(&path).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges_undirected(), 2);
    }
}
