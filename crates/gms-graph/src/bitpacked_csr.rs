//! `BitPackedCsr`: the full Log(Graph)-style representation (§B.1.3)
//! — vertex IDs bit-packed to `⌈log₂ n⌉` bits in one contiguous
//! adjacency structure, offsets compressed with the sampled scheme.
//! Unlike the varint-gap [`crate::CompressedCsr`], decoding one
//! neighbor is O(1) (no prefix walk), which is the "mild
//! decompression overhead, sometimes even speedups" regime the paper
//! highlights for Log(Graph).

use crate::compress::{bitpack::BitPacked, offsets::CompactOffsets};
use gms_core::{CsrGraph, Graph, NodeId};

/// A CSR with bit-packed adjacency and compact offsets.
#[derive(Clone, Debug)]
pub struct BitPackedCsr {
    adjacency: BitPacked,
    offsets: CompactOffsets,
    arcs: usize,
}

impl BitPackedCsr {
    /// Packs a CSR graph; IDs take `⌈log₂ n⌉` bits each.
    pub fn from_csr(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        let adjacency = BitPacked::pack_for_universe(graph.adjacency(), n.max(2));
        let offsets = CompactOffsets::from_offsets(graph.offsets());
        Self {
            adjacency,
            offsets,
            arcs: graph.num_arcs(),
        }
    }

    /// Random access to the `i`-th neighbor of `v` — O(1), the
    /// property gap encodings give up.
    pub fn neighbor_at(&self, v: NodeId, i: usize) -> NodeId {
        let (start, end) = self.offsets.bounds(v as usize);
        assert!(i < end - start, "neighbor index out of range");
        self.adjacency.get(start + i)
    }

    /// Unpacks to plain CSR.
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_parts(self.offsets.to_offsets(), self.adjacency.iter().collect())
    }

    /// Heap bytes of the packed structure.
    pub fn heap_bytes(&self) -> usize {
        self.adjacency.heap_bytes() + self.offsets.heap_bytes()
    }
}

impl Graph for BitPackedCsr {
    fn num_vertices(&self) -> usize {
        self.offsets.len()
    }

    fn num_arcs(&self) -> usize {
        self.arcs
    }

    fn degree(&self, v: NodeId) -> usize {
        self.offsets.degree(v as usize)
    }

    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let (start, end) = self.offsets.bounds(v as usize);
        (start..end).map(|i| self.adjacency.get(i))
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Packed neighborhoods stay sorted: binary search over O(1)
        // random accesses.
        let (start, end) = self.offsets.bounds(u as usize);
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.adjacency.get(mid).cmp(&v) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_access_interface() {
        let g = gms_gen::kronecker_default(9, 6, 3);
        let packed = BitPackedCsr::from_csr(&g);
        assert_eq!(packed.to_csr(), g);
        assert_eq!(packed.num_vertices(), g.num_vertices());
        assert_eq!(packed.num_arcs(), g.num_arcs());
        for v in g.vertices() {
            assert_eq!(packed.degree(v), g.degree(v));
            assert_eq!(
                packed.neighbors(v).collect::<Vec<_>>(),
                g.neighbors_slice(v)
            );
        }
        for &(u, v) in &[(0u32, 1u32), (3, 200), (100, 101)] {
            assert_eq!(packed.has_edge(u, v), g.has_edge(u, v));
        }
    }

    #[test]
    fn random_neighbor_access() {
        let g = gms_gen::gnp(200, 0.1, 1);
        let packed = BitPackedCsr::from_csr(&g);
        for v in [0u32, 50, 199] {
            let slice = g.neighbors_slice(v);
            for (i, &w) in slice.iter().enumerate() {
                assert_eq!(packed.neighbor_at(v, i), w);
            }
        }
    }

    #[test]
    fn space_savings_match_bit_width() {
        // n = 512 → 9 bits/ID vs 32: ~3.5x smaller adjacency.
        let g = gms_gen::gnp(512, 0.05, 2);
        let packed = BitPackedCsr::from_csr(&g);
        let raw = g.heap_bytes();
        assert!(
            packed.heap_bytes() * 2 < raw,
            "packed {} vs raw {raw}",
            packed.heap_bytes()
        );
    }

    #[test]
    fn mining_on_packed_representation() {
        // The representation serves the access interface well enough
        // to drive a set-algebra kernel: triangle counting by
        // neighborhood intersection.
        use gms_core::{Set, SortedVecSet};
        let g = gms_gen::gnp(100, 0.1, 7);
        let packed = BitPackedCsr::from_csr(&g);
        let count_with = |get: &dyn Fn(NodeId) -> SortedVecSet| {
            let mut total = 0u64;
            for (u, v) in g.edges_undirected() {
                total += get(u).intersect_count(&get(v)) as u64;
            }
            total / 3
        };
        let from_csr = count_with(&|v| SortedVecSet::from_sorted(g.neighbors_slice(v)));
        let from_packed = count_with(&|v| packed.neighbors(v).collect::<SortedVecSet>());
        assert_eq!(from_csr, from_packed);
        assert_eq!(from_csr, gms_order::triangle_count(&g));
    }
}
