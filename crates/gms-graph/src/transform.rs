//! Graph transformations: relabeling (vertex permutations), rank
//! orientation (`dir(G)`, §6.3), and induced subgraphs.
//!
//! Reorderings in GMS are *preprocessing* routines (modularity ③):
//! a [`Rank`] assigns each vertex a position; relabeling rewrites the
//! graph so vertex `v` becomes `rank[v]`, and orientation keeps only
//! arcs from lower to higher rank, turning the graph into a DAG whose
//! out-degrees are bounded by the ordering quality (e.g. degeneracy).

use gms_core::{CsrBuilder, CsrGraph, Graph, NodeId};
use rayon::prelude::*;

/// A vertex ordering: `rank[v]` is the position of `v` (0 = first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rank {
    rank: Vec<u32>,
}

impl Rank {
    /// Wraps a rank array.
    ///
    /// # Panics
    /// Panics if `rank` is not a permutation of `0..n`.
    pub fn from_ranks(rank: Vec<u32>) -> Self {
        let n = rank.len();
        let mut seen = vec![false; n];
        for &r in &rank {
            assert!((r as usize) < n && !seen[r as usize], "not a permutation");
            seen[r as usize] = true;
        }
        Self { rank }
    }

    /// Builds from an order array (`order[i]` = i-th vertex).
    pub fn from_order(order: &[NodeId]) -> Self {
        let mut rank = vec![0u32; order.len()];
        let mut seen = vec![false; order.len()];
        for (pos, &v) in order.iter().enumerate() {
            assert!(!seen[v as usize], "not a permutation");
            seen[v as usize] = true;
            rank[v as usize] = pos as u32;
        }
        Self { rank }
    }

    /// The identity ordering on `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self {
            rank: (0..n as u32).collect(),
        }
    }

    /// Position of vertex `v`.
    #[inline]
    pub fn rank_of(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// `true` iff `u` precedes `v`.
    #[inline]
    pub fn precedes(&self, u: NodeId, v: NodeId) -> bool {
        self.rank[u as usize] < self.rank[v as usize]
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// `true` if the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// The raw rank array.
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }

    /// The order array (inverse permutation): `order()[i]` is the
    /// vertex at position `i`.
    pub fn order(&self) -> Vec<NodeId> {
        let mut order = vec![0 as NodeId; self.rank.len()];
        for (v, &r) in self.rank.iter().enumerate() {
            order[r as usize] = v as NodeId;
        }
        order
    }
}

/// Rewrites the graph so that vertex `v` is renamed `rank[v]`
/// (the paper's vertex relabeling, §5/§B.2). Neighborhood contents
/// are remapped and re-sorted; degrees are preserved up to renaming.
pub fn relabel(graph: &CsrGraph, rank: &Rank) -> CsrGraph {
    let n = graph.num_vertices();
    assert_eq!(n, rank.len());
    let order = rank.order();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for new_id in 0..n {
        let old = order[new_id];
        offsets.push(offsets[new_id] + graph.degree(old));
    }
    // Fill each new neighborhood in parallel: remap IDs, then sort.
    let per_vertex: Vec<Vec<NodeId>> = (0..n)
        .into_par_iter()
        .map(|new_id| {
            let old = order[new_id];
            let mut neigh: Vec<NodeId> = graph
                .neighbors_slice(old)
                .iter()
                .map(|&w| rank.rank_of(w))
                .collect();
            neigh.sort_unstable();
            neigh
        })
        .collect();
    let neighbors: Vec<NodeId> = per_vertex.into_iter().flatten().collect();
    CsrGraph::from_parts(offsets, neighbors)
}

/// Orients an undirected graph by rank: keeps the arc `u -> v` iff
/// `rank(u) < rank(v)` (the paper's `dir(G)`, Algorithm 7 line 9).
/// The result is a DAG; under a degeneracy order, out-degrees are at
/// most the degeneracy `d`.
pub fn orient_by_rank(graph: &CsrGraph, rank: &Rank) -> CsrGraph {
    let n = graph.num_vertices();
    assert_eq!(n, rank.len());
    let mut builder = CsrBuilder::new(n);
    for u in graph.vertices() {
        for v in graph.neighbors(u) {
            if rank.precedes(u, v) {
                builder.push_arc(u, v);
            }
        }
    }
    builder.finish_dedup()
}

/// Extracts the subgraph induced by `vertices`, relabeling them
/// `0..k` in the given order. Returns the subgraph and the mapping
/// back to original IDs.
pub fn induced_subgraph(graph: &CsrGraph, vertices: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
    let mut local = vec![u32::MAX; graph.num_vertices()];
    for (i, &v) in vertices.iter().enumerate() {
        assert!(
            local[v as usize] == u32::MAX,
            "duplicate vertex in selection"
        );
        local[v as usize] = i as u32;
    }
    let mut builder = CsrBuilder::new(vertices.len());
    for (i, &v) in vertices.iter().enumerate() {
        for w in graph.neighbors(v) {
            let lw = local[w as usize];
            if lw != u32::MAX {
                builder.push_arc(i as NodeId, lw);
            }
        }
    }
    (builder.finish_dedup(), vertices.to_vec())
}

/// Degree of every vertex, computed in parallel.
pub fn degrees(graph: &CsrGraph) -> Vec<u32> {
    (0..graph.num_vertices() as NodeId)
        .into_par_iter()
        .map(|v| graph.degree(v) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrGraph {
        CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn rank_roundtrip() {
        let rank = Rank::from_order(&[2, 0, 3, 1]);
        assert_eq!(rank.rank_of(2), 0);
        assert_eq!(rank.rank_of(1), 3);
        assert_eq!(rank.order(), vec![2, 0, 3, 1]);
        assert!(rank.precedes(2, 1));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rank_rejects_duplicates() {
        Rank::from_ranks(vec![0, 0, 1]);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = path4();
        // Reverse the vertex order.
        let rank = Rank::from_ranks(vec![3, 2, 1, 0]);
        let h = relabel(&g, &rank);
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_arcs(), g.num_arcs());
        // Old edge (0,1) becomes (3,2), etc.
        assert!(h.has_edge(3, 2));
        assert!(h.has_edge(2, 1));
        assert!(h.has_edge(1, 0));
        assert!(!h.has_edge(3, 0));
    }

    #[test]
    fn orientation_gives_dag_with_half_arcs() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let rank = Rank::identity(4);
        let d = orient_by_rank(&g, &rank);
        assert_eq!(d.num_arcs(), 4);
        for (u, v) in d.arcs() {
            assert!(u < v);
        }
    }

    #[test]
    fn orientation_respects_custom_rank() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1), (1, 2)]);
        let rank = Rank::from_ranks(vec![2, 1, 0]); // 2 first, 0 last
        let d = orient_by_rank(&g, &rank);
        assert!(d.has_edge(1, 0));
        assert!(d.has_edge(2, 1));
        assert!(!d.has_edge(0, 1));
    }

    #[test]
    fn induced_subgraph_extracts_triangle() {
        let g = CsrGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let (sub, map) = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges_undirected(), 3);
        assert_eq!(map, vec![0, 1, 2]);
        let (sub2, _) = induced_subgraph(&g, &[2, 3, 4]);
        assert_eq!(sub2.num_edges_undirected(), 2);
    }

    #[test]
    fn degrees_match_graph() {
        let g = path4();
        assert_eq!(degrees(&g), vec![1, 2, 2, 1]);
    }
}
