//! # gms-graph
//!
//! Graph storage utilities for GraphMineSuite-rs: transformations
//! (relabeling, rank orientation, induced subgraphs), multi-format
//! dataset I/O ([`io`]: SNAP edge lists, METIS files, and versioned
//! `.gcsr` binary CSR snapshots with an mmap-backed zero-copy read
//! path), and the compression schemes of the paper's storage taxonomy
//! (Figure 3): varint/gap/run-length/reference encodings, bit packing,
//! compact offsets, k²-trees, and a compressed CSR that serves the
//! standard [`Graph`](gms_core::Graph) interface.

#![warn(missing_docs)]

pub mod adjacency_matrix;
pub mod bitpacked_csr;
pub mod compress;
pub mod compressed_csr;
pub mod io;
pub mod patch;
pub mod transform;
pub mod traverse;

pub use adjacency_matrix::AdjacencyMatrix;
pub use bitpacked_csr::BitPackedCsr;
pub use compressed_csr::CompressedCsr;
pub use patch::{patch_csr, EdgeDelta, PatchError};
pub use transform::{degrees, induced_subgraph, orient_by_rank, relabel, Rank};
pub use traverse::{bfs_distances, connected_components, largest_component_size, pseudo_diameter};
