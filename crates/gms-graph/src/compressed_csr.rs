//! `CompressedCsr`: a Log(Graph)-style compressed graph representation
//! (§5, §B.1.3) combining gap+varint adjacency encoding with compact
//! offsets. It implements the same [`Graph`] access interface as plain
//! CSR, so every GMS algorithm runs on it unchanged — the paper's
//! representation modularity (①–②) in action.

use crate::compress::{gap, offsets::CompactOffsets};
use gms_core::{CsrGraph, Graph, NodeId};

/// A compressed CSR with varint-gap adjacency and sampled offsets.
#[derive(Clone, Debug)]
pub struct CompressedCsr {
    /// Gap-encoded adjacency payload, concatenated per vertex.
    payload: Vec<u8>,
    /// Byte range of each vertex's payload plus its degree.
    index: CompressedIndex,
    arcs: usize,
}

#[derive(Clone, Debug)]
struct CompressedIndex {
    /// Byte offsets into `payload` (n + 1 entries), themselves
    /// compressed with the sampled-degree scheme.
    byte_offsets: CompactOffsets,
    /// Degrees, compressed the same way (as "offsets" of a prefix sum).
    degree_prefix: CompactOffsets,
}

impl CompressedCsr {
    /// Compresses a CSR graph.
    pub fn from_csr(csr: &CsrGraph) -> Self {
        let n = csr.num_vertices();
        let mut payload = Vec::new();
        let mut byte_offsets = Vec::with_capacity(n + 1);
        let mut degree_prefix = Vec::with_capacity(n + 1);
        byte_offsets.push(0usize);
        degree_prefix.push(0usize);
        for v in 0..n as NodeId {
            let encoded = gap::encode(csr.neighbors_slice(v));
            payload.extend_from_slice(&encoded);
            byte_offsets.push(payload.len());
            degree_prefix.push(degree_prefix[v as usize] + csr.degree(v));
        }
        Self {
            payload,
            index: CompressedIndex {
                byte_offsets: CompactOffsets::from_offsets(&byte_offsets),
                degree_prefix: CompactOffsets::from_offsets(&degree_prefix),
            },
            arcs: csr.num_arcs(),
        }
    }

    /// Decompresses back to plain CSR.
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::with_capacity(self.arcs);
        for v in 0..n as NodeId {
            neighbors.extend(self.neighbors(v));
            offsets.push(neighbors.len());
        }
        CsrGraph::from_parts(offsets, neighbors)
    }

    /// Decodes the neighborhood of `v` into a vector.
    pub fn neighborhood_vec(&self, v: NodeId) -> Vec<NodeId> {
        self.neighbors(v).collect()
    }

    /// Compressed heap bytes (payload + both offset structures).
    pub fn heap_bytes(&self) -> usize {
        self.payload.capacity()
            + self.index.byte_offsets.heap_bytes()
            + self.index.degree_prefix.heap_bytes()
    }
}

impl Graph for CompressedCsr {
    fn num_vertices(&self) -> usize {
        self.index.byte_offsets.len()
    }

    fn num_arcs(&self) -> usize {
        self.arcs
    }

    fn degree(&self, v: NodeId) -> usize {
        self.index.degree_prefix.degree(v as usize)
    }

    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let (start, end) = self.index.byte_offsets.bounds(v as usize);
        let count = self.degree(v);
        gap::GapDecoder::new(&self.payload[start..end], count)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Decode-and-scan; gaps must be walked linearly.
        self.neighbors(u).take_while(|&w| w <= v).any(|w| w == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        let mut edges = Vec::new();
        // A ring with chords: locality-friendly for gap encoding.
        for v in 0..200u32 {
            edges.push((v, (v + 1) % 200));
            edges.push((v, (v + 7) % 200));
        }
        CsrGraph::from_undirected_edges(200, &edges)
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let csr = sample();
        let compressed = CompressedCsr::from_csr(&csr);
        assert_eq!(compressed.to_csr(), csr);
        assert_eq!(compressed.num_vertices(), csr.num_vertices());
        assert_eq!(compressed.num_arcs(), csr.num_arcs());
    }

    #[test]
    fn access_interface_matches_csr() {
        let csr = sample();
        let compressed = CompressedCsr::from_csr(&csr);
        for v in csr.vertices() {
            assert_eq!(compressed.degree(v), csr.degree(v));
            assert_eq!(
                compressed.neighborhood_vec(v),
                csr.neighbors_slice(v).to_vec()
            );
        }
        assert_eq!(compressed.has_edge(0, 1), csr.has_edge(0, 1));
        assert_eq!(compressed.has_edge(0, 100), csr.has_edge(0, 100));
    }

    #[test]
    fn compression_saves_space_on_local_graphs() {
        let csr = sample();
        let compressed = CompressedCsr::from_csr(&csr);
        assert!(
            compressed.heap_bytes() < csr.heap_bytes() / 2,
            "compressed {} vs raw {}",
            compressed.heap_bytes(),
            csr.heap_bytes()
        );
    }

    #[test]
    fn empty_graph() {
        let csr = CsrGraph::from_undirected_edges(5, &[]);
        let compressed = CompressedCsr::from_csr(&csr);
        assert_eq!(compressed.to_csr(), csr);
        assert_eq!(compressed.degree(3), 0);
        assert!(!compressed.has_edge(0, 1));
    }
}
