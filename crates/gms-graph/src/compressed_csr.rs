//! `CompressedCsr`: a Log(Graph)-style compressed graph representation
//! (§5, §B.1.3) combining gap+varint adjacency encoding with a compact
//! block index. It implements the same [`Graph`] access interface as
//! plain CSR, so every GMS algorithm runs on it unchanged — the
//! paper's representation modularity (①–②) in action — and it is the
//! in-memory form of the `.gcsr` v2 snapshot payload
//! (see [`crate::io::snapshot`]).
//!
//! This is a *serving* structure, not just a storage study, so the
//! access paths are built for the kernel hot loop:
//!
//! * [`CompressedCsr::decode_into`] decodes a whole neighborhood into
//!   a caller-owned buffer — allocation-free once the buffer has grown
//!   to the maximum degree — four varints per step on single-byte gap
//!   runs ([`crate::compress::varint::decode4_u32`]);
//! * [`Graph::has_edge`] is skip-sampled: every 32nd neighbor of a
//!   high-degree vertex is recorded with its payload byte position at
//!   build time, so a membership probe jumps to the right 32-entry
//!   window instead of walking the whole neighborhood;
//! * [`CompressedCsr::from_csr_ordered`] relabels the graph by a
//!   locality ordering (e.g. [BFS](https://en.wikipedia.org/wiki/Breadth-first_search)
//!   order from `gms-order`) before gap-encoding — neighbors get
//!   nearby IDs, gaps shrink, varints shorten — and
//!   [`CompressedCsr::bytes_per_arc`] reports the achieved size.

use crate::compress::{gap, varint};
use crate::transform::{relabel, Rank};
use gms_core::{CsrGraph, Graph, NodeId};

/// Vertices per index block: one absolute payload anchor every
/// `INDEX_BLOCK` vertices, varint `(byte_len, degree)` pairs in
/// between. Part of the `.gcsr` v2 on-disk contract.
pub const INDEX_BLOCK: usize = 64;

/// `has_edge` sampling stride: every `SAMPLE_EVERY`-th decoded
/// neighbor of a hub vertex is recorded as a skip sample.
const SAMPLE_EVERY: usize = 32;

/// Minimum degree for a vertex to get skip samples; below this a
/// linear early-exit scan wins anyway.
const HUB_MIN_DEGREE: usize = 2 * SAMPLE_EVERY;

/// The per-vertex index of a compressed adjacency payload: absolute
/// 64-bit payload anchors every [`INDEX_BLOCK`] vertices plus a varint
/// stream of `(byte_len, degree)` pairs, one pair per vertex. Both the
/// byte range *and* the degree of a vertex come out of one bounded
/// decode walk (≤ [`INDEX_BLOCK`] pairs).
#[derive(Clone, Debug, Default)]
pub(crate) struct NbrIndex {
    n: usize,
    /// Absolute payload byte offset of each block's first vertex.
    pub(crate) anchors: Vec<u64>,
    /// Byte position in `pairs` where each block's pair run starts.
    pub(crate) block_starts: Vec<u32>,
    /// Varint `(byte_len, degree)` pairs, concatenated per vertex.
    pub(crate) pairs: Vec<u8>,
}

impl NbrIndex {
    pub(crate) fn with_capacity(n: usize) -> Self {
        Self {
            n: 0,
            anchors: Vec::with_capacity(n.div_ceil(INDEX_BLOCK)),
            block_starts: Vec::with_capacity(n.div_ceil(INDEX_BLOCK)),
            pairs: Vec::new(),
        }
    }

    /// Reassembles an index from its decoded sections (the `.gcsr` v2
    /// read path). The caller has validated consistency already.
    pub(crate) fn from_parts(
        n: usize,
        anchors: Vec<u64>,
        block_starts: Vec<u32>,
        pairs: Vec<u8>,
    ) -> Self {
        Self {
            n,
            anchors,
            block_starts,
            pairs,
        }
    }

    /// Appends the next vertex's `(byte_len, degree)` entry. Vertices
    /// must be pushed in ID order; `payload_offset` is the absolute
    /// byte offset where this vertex's payload starts.
    pub(crate) fn push(&mut self, payload_offset: u64, byte_len: usize, degree: usize) {
        assert!(byte_len <= u32::MAX as usize && degree <= u32::MAX as usize);
        if self.n.is_multiple_of(INDEX_BLOCK) {
            self.anchors.push(payload_offset);
            self.block_starts.push(self.pairs.len() as u32);
        }
        varint::encode_u32(byte_len as u32, &mut self.pairs);
        varint::encode_u32(degree as u32, &mut self.pairs);
        self.n += 1;
    }

    pub(crate) fn len(&self) -> usize {
        self.n
    }

    /// `(payload_start, payload_end, degree)` of vertex `v`: jump to
    /// the block anchor, walk at most `INDEX_BLOCK - 1` preceding
    /// pairs, read `v`'s pair.
    #[inline]
    pub(crate) fn locate(&self, v: usize) -> (usize, usize, usize) {
        assert!(v < self.n, "vertex {v} out of range ({n})", n = self.n);
        let block = v / INDEX_BLOCK;
        let mut cursor = &self.pairs[self.block_starts[block] as usize..];
        let mut offset = self.anchors[block];
        for _ in block * INDEX_BLOCK..v {
            let len = varint::decode_u32(&mut cursor).expect("pair stream");
            varint::decode_u32(&mut cursor).expect("pair stream");
            offset += u64::from(len);
        }
        let len = varint::decode_u32(&mut cursor).expect("pair stream");
        let degree = varint::decode_u32(&mut cursor).expect("pair stream");
        (
            offset as usize,
            (offset + u64::from(len)) as usize,
            degree as usize,
        )
    }

    /// Sequential walk over all vertices in ID order, calling
    /// `f(v, payload_start, payload_end, degree)` — one linear pass
    /// over the pair stream, no per-vertex block walk.
    pub(crate) fn for_each(&self, mut f: impl FnMut(usize, usize, usize, usize)) {
        let mut cursor = self.pairs.as_slice();
        let mut offset = 0usize;
        for v in 0..self.n {
            let len = varint::decode_u32(&mut cursor).expect("pair stream") as usize;
            let degree = varint::decode_u32(&mut cursor).expect("pair stream") as usize;
            f(v, offset, offset + len, degree);
            offset += len;
        }
    }

    /// Heap bytes actually used (lengths, not capacities).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.anchors.len() * 8 + self.block_starts.len() * 4 + self.pairs.len()
    }

    pub(crate) fn shrink_to_fit(&mut self) {
        self.anchors.shrink_to_fit();
        self.block_starts.shrink_to_fit();
        self.pairs.shrink_to_fit();
    }
}

/// Skip samples for [`Graph::has_edge`] on high-degree vertices:
/// for every hub (degree ≥ `HUB_MIN_DEGREE`), the neighbor value and
/// payload byte position after every `SAMPLE_EVERY`-th entry. A
/// membership probe binary-searches the samples and decodes at most
/// one `SAMPLE_EVERY`-entry window.
#[derive(Clone, Debug, Default)]
pub(crate) struct SkipIndex {
    /// Sampled vertices, ascending.
    hubs: Vec<NodeId>,
    /// Start of each hub's samples in `values`/`positions`
    /// (`hubs.len() + 1` entries).
    starts: Vec<u32>,
    /// Neighbor value at sampled entry `(j+1) * SAMPLE_EVERY - 1`.
    values: Vec<u32>,
    /// Payload byte offset (relative to the hub's payload start)
    /// just *after* the sampled entry — the decode resume point.
    positions: Vec<u32>,
}

impl SkipIndex {
    /// Builds the samples by decoding every hub neighborhood once.
    pub(crate) fn build(index: &NbrIndex, payload: &[u8]) -> Self {
        let mut skips = SkipIndex {
            starts: vec![0],
            ..SkipIndex::default()
        };
        index.for_each(|v, start, end, degree| {
            if degree < HUB_MIN_DEGREE {
                return;
            }
            let section = &payload[start..end];
            let mut cursor = section;
            let mut acc = 0u32;
            for i in 0..degree {
                let gapv = varint::decode_u32(&mut cursor).expect("validated payload");
                acc = if i == 0 { gapv } else { acc + gapv };
                if (i + 1) % SAMPLE_EVERY == 0 {
                    skips.values.push(acc);
                    skips.positions.push((section.len() - cursor.len()) as u32);
                }
            }
            skips.hubs.push(v as NodeId);
            skips.starts.push(skips.values.len() as u32);
        });
        skips.hubs.shrink_to_fit();
        skips.starts.shrink_to_fit();
        skips.values.shrink_to_fit();
        skips.positions.shrink_to_fit();
        skips
    }

    /// The `(values, positions)` sample slices of `v`, if sampled.
    #[inline]
    fn samples_of(&self, v: NodeId) -> Option<(&[u32], &[u32])> {
        let i = self.hubs.binary_search(&v).ok()?;
        let range = self.starts[i] as usize..self.starts[i + 1] as usize;
        Some((&self.values[range.clone()], &self.positions[range]))
    }

    pub(crate) fn heap_bytes(&self) -> usize {
        self.hubs.len() * 4
            + self.starts.len() * 4
            + self.values.len() * 4
            + self.positions.len() * 4
    }
}

/// A compressed CSR with varint-gap adjacency, a block-sampled
/// `(byte_len, degree)` index, and `has_edge` skip samples.
#[derive(Clone, Debug)]
pub struct CompressedCsr {
    /// Gap-encoded adjacency payload, concatenated per vertex.
    payload: Vec<u8>,
    /// Byte range + degree of each vertex's payload.
    index: NbrIndex,
    /// `has_edge` acceleration samples for hub vertices.
    skips: SkipIndex,
    arcs: usize,
    /// Whether a locality reordering was applied before encoding.
    reordered: bool,
}

impl CompressedCsr {
    /// Compresses a CSR graph, preserving vertex IDs (the compressed
    /// graph is byte-for-byte the same adjacency structure, so content
    /// fingerprints — and cached kernel outcomes — carry over).
    pub fn from_csr(csr: &CsrGraph) -> Self {
        Self::build(csr, false)
    }

    /// Compresses a CSR graph after relabeling it by `rank` — the
    /// §B.2 recompression pipeline: a locality ordering (BFS order
    /// from `gms-order` is the prescribed choice) gives neighbors
    /// nearby IDs, shrinking the stored gaps and therefore the
    /// varints. The result is the *relabeled isomorph*: counts and
    /// structure match, vertex IDs are permuted (and the content
    /// fingerprint differs — callers that need ID stability use
    /// [`CompressedCsr::from_csr`]).
    pub fn from_csr_ordered(csr: &CsrGraph, rank: &Rank) -> Self {
        Self::build(&relabel(csr, rank), true)
    }

    fn build(csr: &CsrGraph, reordered: bool) -> Self {
        let n = csr.num_vertices();
        let mut payload = Vec::new();
        let mut index = NbrIndex::with_capacity(n);
        for v in 0..n as NodeId {
            let neigh = csr.neighbors_slice(v);
            let before = payload.len();
            encode_neighborhood(neigh, &mut payload);
            index.push(before as u64, payload.len() - before, neigh.len());
        }
        payload.shrink_to_fit();
        index.shrink_to_fit();
        let skips = SkipIndex::build(&index, &payload);
        Self {
            payload,
            index,
            skips,
            arcs: csr.num_arcs(),
            reordered,
        }
    }

    /// Reassembles a compressed graph from validated `.gcsr` v2
    /// sections; skip samples are rebuilt from the payload.
    pub(crate) fn from_validated_parts(
        index: NbrIndex,
        payload: Vec<u8>,
        arcs: usize,
        reordered: bool,
    ) -> Self {
        let skips = SkipIndex::build(&index, &payload);
        Self::assemble(index, skips, payload, arcs, reordered)
    }

    /// Assembles a compressed graph from parts that already include
    /// the skip samples (the mmap-to-owned conversion path).
    pub(crate) fn assemble(
        index: NbrIndex,
        skips: SkipIndex,
        payload: Vec<u8>,
        arcs: usize,
        reordered: bool,
    ) -> Self {
        Self {
            payload,
            index,
            skips,
            arcs,
            reordered,
        }
    }

    /// The gap-encoded payload bytes (the `.gcsr` v2 payload section).
    pub(crate) fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The per-vertex index (the `.gcsr` v2 index section).
    pub(crate) fn index(&self) -> &NbrIndex {
        &self.index
    }

    /// Whether this graph was relabeled by a locality ordering before
    /// encoding (recorded in the `.gcsr` v2 header flags).
    pub fn is_reordered(&self) -> bool {
        self.reordered
    }

    /// Decompresses back to plain CSR in two linear passes: the
    /// offsets come straight from the index walk, the adjacency is
    /// decoded once into a single preallocated buffer — no per-vertex
    /// collection.
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors: Vec<NodeId> = Vec::with_capacity(self.arcs);
        self.index.for_each(|_, start, end, degree| {
            let mut section = &self.payload[start..end];
            gap::decode_append(&mut section, degree, &mut neighbors).expect("validated payload");
            offsets.push(neighbors.len());
        });
        CsrGraph::from_parts(offsets, neighbors)
    }

    /// Decodes the neighborhood of `v` into `out`, clearing it first.
    /// Allocation-free once `out`'s capacity has reached the maximum
    /// degree — the kernel-loop decode path (pair it with a per-worker
    /// scratch buffer, e.g. `gms-pattern`'s `with_worker_scratch`).
    #[inline]
    pub fn decode_into(&self, v: NodeId, out: &mut Vec<NodeId>) {
        let (start, end, degree) = self.index.locate(v as usize);
        let consumed =
            gap::decode_into(&self.payload[start..end], degree, out).expect("validated payload");
        debug_assert_eq!(consumed, end - start);
    }

    /// Decodes the neighborhood of `v` into a fresh vector.
    pub fn neighborhood_vec(&self, v: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.decode_into(v, &mut out);
        out
    }

    /// Compressed heap bytes actually used (payload + index + skip
    /// samples; lengths, not capacities — the honest bytes-per-edge
    /// numerator).
    pub fn heap_bytes(&self) -> usize {
        self.payload.len() + self.index.heap_bytes() + self.skips.heap_bytes()
    }

    /// Achieved compression: heap bytes per stored arc (for an
    /// undirected graph stored symmetrically, per half-edge). Raw CSR
    /// costs `4 + 8(n+1)/a` bytes per arc for comparison.
    pub fn bytes_per_arc(&self) -> f64 {
        self.heap_bytes() as f64 / self.arcs.max(1) as f64
    }
}

/// Gap+varint-encodes one sorted neighborhood, appending to `payload`.
fn encode_neighborhood(sorted: &[NodeId], payload: &mut Vec<u8>) {
    debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    let mut prev = 0u32;
    for (i, &v) in sorted.iter().enumerate() {
        let gapv = if i == 0 { v } else { v - prev };
        varint::encode_u32(gapv, payload);
        prev = v;
    }
}

impl Graph for CompressedCsr {
    fn num_vertices(&self) -> usize {
        self.index.len()
    }

    fn num_arcs(&self) -> usize {
        self.arcs
    }

    fn degree(&self, v: NodeId) -> usize {
        self.index.locate(v as usize).2
    }

    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let (start, end, degree) = self.index.locate(v as usize);
        gap::GapDecoder::new(&self.payload[start..end], degree)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        probe_edge(&self.index, &self.skips, &self.payload, u, v)
    }
}

/// The skip-sampled membership probe, shared between [`CompressedCsr`]
/// and the mmap-served compressed snapshot: jump to the right
/// `SAMPLE_EVERY`-entry window via the hub samples, then scan with
/// early exit.
pub(crate) fn probe_edge(
    index: &NbrIndex,
    skips: &SkipIndex,
    payload: &[u8],
    u: NodeId,
    v: NodeId,
) -> bool {
    let (start, end, degree) = index.locate(u as usize);
    let mut cursor = &payload[start..end];
    let mut skipped = 0usize;
    let mut acc: Option<u32> = None;
    if degree >= HUB_MIN_DEGREE {
        if let Some((values, positions)) = skips.samples_of(u) {
            // Greatest sample strictly below `v` is the resume
            // point; an exact sample match is already the answer.
            let j = values.partition_point(|&x| x < v);
            if j < values.len() && values[j] == v {
                return true;
            }
            if j > 0 {
                acc = Some(values[j - 1]);
                cursor = &payload[start + positions[j - 1] as usize..end];
                skipped = j * SAMPLE_EVERY;
            }
        }
    }
    // Scan forward (≤ SAMPLE_EVERY entries when resumed from a
    // sample: the next sample is ≥ v) with early exit.
    for _ in skipped..degree {
        let Some(gapv) = varint::decode_u32(&mut cursor) else {
            return false;
        };
        let value = match acc {
            None => gapv,
            Some(a) => a + gapv,
        };
        if value >= v {
            return value == v;
        }
        acc = Some(value);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        let mut edges = Vec::new();
        // A ring with chords: locality-friendly for gap encoding.
        for v in 0..200u32 {
            edges.push((v, (v + 1) % 200));
            edges.push((v, (v + 7) % 200));
        }
        CsrGraph::from_undirected_edges(200, &edges)
    }

    /// A graph with hub vertices well past the skip-sampling
    /// threshold (vertex 0 connects to everyone, and a planted-ish
    /// block keeps mid-degree vertices interesting).
    fn hubby() -> CsrGraph {
        let n = 400u32;
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push((0, v));
            if v % 3 == 0 {
                edges.push((1, v));
            }
            edges.push((v, (v + 13) % n));
        }
        CsrGraph::from_undirected_edges(n as usize, &edges)
    }

    #[test]
    fn roundtrip_preserves_graph() {
        for csr in [sample(), hubby()] {
            let compressed = CompressedCsr::from_csr(&csr);
            assert_eq!(compressed.to_csr(), csr);
            assert_eq!(compressed.num_vertices(), csr.num_vertices());
            assert_eq!(compressed.num_arcs(), csr.num_arcs());
            assert!(!compressed.is_reordered());
        }
    }

    #[test]
    fn access_interface_matches_csr() {
        for csr in [sample(), hubby()] {
            let compressed = CompressedCsr::from_csr(&csr);
            let mut scratch = Vec::new();
            for v in csr.vertices() {
                assert_eq!(compressed.degree(v), csr.degree(v));
                assert_eq!(
                    compressed.neighborhood_vec(v),
                    csr.neighbors_slice(v).to_vec()
                );
                compressed.decode_into(v, &mut scratch);
                assert_eq!(scratch.as_slice(), csr.neighbors_slice(v));
                let streamed: Vec<NodeId> = compressed.neighbors(v).collect();
                assert_eq!(streamed.as_slice(), csr.neighbors_slice(v));
            }
        }
    }

    #[test]
    fn has_edge_agrees_with_csr_including_hubs() {
        let csr = hubby();
        let compressed = CompressedCsr::from_csr(&csr);
        // Exhaustive over a vertex sample, covering hub vertex 0
        // (degree ~400, several skip windows), the mid hub 1, and
        // ordinary vertices.
        for u in [0u32, 1, 2, 57, 200, 399] {
            for v in 0..csr.num_vertices() as NodeId {
                assert_eq!(
                    compressed.has_edge(u, v),
                    csr.has_edge(u, v),
                    "has_edge({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn decode_into_is_allocation_free_after_warmup() {
        let csr = hubby();
        let compressed = CompressedCsr::from_csr(&csr);
        let mut scratch = Vec::with_capacity(csr.max_degree());
        let ptr = scratch.as_ptr();
        for v in csr.vertices() {
            compressed.decode_into(v, &mut scratch);
        }
        assert_eq!(scratch.as_ptr(), ptr, "scratch buffer must be reused");
    }

    #[test]
    fn ordered_compression_shrinks_scrambled_graphs() {
        // A grid whose IDs were scrambled: terrible gaps raw, tiny
        // gaps after a BFS-style relabel. Use the inverse of the
        // scramble as the locality rank (a perfect order here).
        let grid = gms_gen::grid(30, 30);
        let scramble = crate::transform::Rank::from_order(
            &(0..900u32).map(|v| (v * 541) % 900).collect::<Vec<_>>(),
        );
        let scrambled = relabel(&grid, &scramble);
        let plain = CompressedCsr::from_csr(&scrambled);
        // Invert: rank_of(v) in `scramble` maps new → old position.
        let unscramble = crate::transform::Rank::from_ranks(
            (0..900u32).map(|v| (v * 541) % 900).collect::<Vec<_>>(),
        );
        let ordered = CompressedCsr::from_csr_ordered(&scrambled, &unscramble);
        assert!(ordered.is_reordered());
        assert_eq!(ordered.num_arcs(), plain.num_arcs());
        assert!(
            ordered.heap_bytes() < plain.heap_bytes(),
            "ordered {} vs plain {}",
            ordered.heap_bytes(),
            plain.heap_bytes()
        );
        // The relabeled isomorph still decodes to a valid CSR with
        // the same arc count.
        assert_eq!(ordered.to_csr().num_arcs(), scrambled.num_arcs());
    }

    #[test]
    fn compression_saves_space_on_local_graphs() {
        let csr = sample();
        let compressed = CompressedCsr::from_csr(&csr);
        assert!(
            compressed.heap_bytes() < csr.heap_bytes() / 2,
            "compressed {} vs raw {}",
            compressed.heap_bytes(),
            csr.heap_bytes()
        );
        let per_arc = compressed.bytes_per_arc();
        assert!(per_arc > 0.0 && per_arc < 4.0, "bytes/arc {per_arc}");
    }

    #[test]
    fn heap_bytes_counts_lengths_not_capacities() {
        let csr = sample();
        let compressed = CompressedCsr::from_csr(&csr);
        let expected = compressed.payload.len()
            + compressed.index.heap_bytes()
            + compressed.skips.heap_bytes();
        assert_eq!(compressed.heap_bytes(), expected);
        // The build shrinks the payload, so len == capacity.
        assert_eq!(compressed.payload.len(), compressed.payload.capacity());
    }

    #[test]
    fn empty_graph() {
        let csr = CsrGraph::from_undirected_edges(5, &[]);
        let compressed = CompressedCsr::from_csr(&csr);
        assert_eq!(compressed.to_csr(), csr);
        assert_eq!(compressed.degree(3), 0);
        assert!(!compressed.has_edge(0, 1));
        let zero = CsrGraph::from_undirected_edges(0, &[]);
        let compressed = CompressedCsr::from_csr(&zero);
        assert_eq!(compressed.num_vertices(), 0);
        assert_eq!(compressed.to_csr(), zero);
    }
}
