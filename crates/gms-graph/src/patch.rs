//! Batched edge mutations on immutable CSR graphs.
//!
//! A [`CsrGraph`] is a frozen pair of arrays; mutating it in place
//! would invalidate every borrowed adjacency slice and every
//! content fingerprint derived from it. Instead, [`patch_csr`]
//! applies a whole batch of undirected edge insertions and removals
//! in one O(n + m + |batch| log |batch|) rebuild, producing a *new*
//! CSR plus an [`EdgeDelta`] describing what actually changed — the
//! input the platform's delta-aware cache invalidation and the
//! incremental kernels (touched-wedge triangle recount, localized
//! k-core re-peeling) consume.
//!
//! Semantics are set-like and idempotent: the patched edge set is
//! `(E \ remove) ∪ add`. Adding a present edge or removing an absent
//! one is a no-op (and does not appear in the delta); an edge listed
//! in both batches ends up present. Self-loops are rejected from
//! `add` silently (the CSR representation never stores them) and
//! endpoints outside `0..n` are a typed [`PatchError`] — edge
//! mutations never grow or shrink the vertex set.

use gms_core::{CsrGraph, Edge, Graph, NodeId};

/// What a [`patch_csr`] call actually changed, in canonical
/// (`u < v`) undirected form. This is the `delta_summary` half of the
/// platform's versioned fingerprint lineage: downstream caches use
/// [`EdgeDelta::touched`] to decide which results a mutation can
/// possibly affect.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Edges present after the patch that were absent before,
    /// canonical and sorted.
    pub added: Vec<Edge>,
    /// Edges absent after the patch that were present before,
    /// canonical and sorted.
    pub removed: Vec<Edge>,
    /// Sorted, deduplicated endpoints of every added or removed
    /// edge — the vertices whose neighborhoods differ between the
    /// two versions.
    pub touched: Vec<NodeId>,
}

impl EdgeDelta {
    /// `true` when the patch was a no-op (every requested addition
    /// already present, every removal already absent): the graph,
    /// and therefore its fingerprint, is unchanged.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Whether `v` is an endpoint of any actual change.
    pub fn touches(&self, v: NodeId) -> bool {
        self.touched.binary_search(&v).is_ok()
    }
}

/// Why a mutation batch was rejected. The batch is validated as a
/// whole before any work happens: a rejected patch leaves nothing to
/// roll back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatchError {
    /// An edge referenced a vertex outside `0..vertices`. Edge
    /// mutations cannot create vertices; load a new graph for that.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: NodeId,
        /// The graph's vertex count.
        vertices: usize,
    },
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::VertexOutOfRange { vertex, vertices } => {
                write!(f, "vertex {vertex} out of range (graph has {vertices})")
            }
        }
    }
}

impl std::error::Error for PatchError {}

/// Canonicalizes a raw edge batch: undirected `u < v` form,
/// self-loops dropped, duplicates removed, endpoints range-checked.
fn canonicalize(edges: &[Edge], n: usize) -> Result<Vec<Edge>, PatchError> {
    let mut out = Vec::with_capacity(edges.len());
    for &(u, v) in edges {
        for w in [u, v] {
            if (w as usize) >= n {
                return Err(PatchError::VertexOutOfRange {
                    vertex: w,
                    vertices: n,
                });
            }
        }
        if u == v {
            continue;
        }
        out.push((u.min(v), u.max(v)));
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Applies a batch of undirected edge additions and removals to
/// `graph`, returning the patched CSR and the [`EdgeDelta`] of
/// *actual* changes.
///
/// The result's edge set is `(E \ remove) ∪ add` — removals apply
/// first, additions win. The rebuild streams each vertex's old
/// (sorted) adjacency against its sorted per-vertex change lists, so
/// cost is linear in the graph plus batch size, not quadratic.
///
/// # Errors
/// [`PatchError::VertexOutOfRange`] if any endpoint in either batch
/// is `>= graph.num_vertices()`; the graph is untouched.
pub fn patch_csr(
    graph: &CsrGraph,
    add: &[Edge],
    remove: &[Edge],
) -> Result<(CsrGraph, EdgeDelta), PatchError> {
    let n = graph.num_vertices();
    let add = canonicalize(add, n)?;
    let remove = canonicalize(remove, n)?;

    // Net effect per candidate edge: present_after = (present_before
    // && !removed) || added. Only candidates whose presence actually
    // flips enter the delta.
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for &(u, v) in &add {
        if !graph.has_edge(u, v) {
            added.push((u, v));
        }
    }
    for &(u, v) in &remove {
        if graph.has_edge(u, v) && add.binary_search(&(u, v)).is_err() {
            removed.push((u, v));
        }
    }

    let mut touched: Vec<NodeId> = added
        .iter()
        .chain(removed.iter())
        .flat_map(|&(u, v)| [u, v])
        .collect();
    touched.sort_unstable();
    touched.dedup();
    let delta = EdgeDelta {
        added,
        removed,
        touched,
    };
    if delta.is_empty() {
        return Ok((graph.clone(), delta));
    }

    // Directed arc change lists, sorted by (source, target), so each
    // vertex's rebuild is a three-way sorted merge.
    let mut add_arcs: Vec<(NodeId, NodeId)> = Vec::with_capacity(delta.added.len() * 2);
    for &(u, v) in &delta.added {
        add_arcs.push((u, v));
        add_arcs.push((v, u));
    }
    add_arcs.sort_unstable();
    let mut rm_arcs: Vec<(NodeId, NodeId)> = Vec::with_capacity(delta.removed.len() * 2);
    for &(u, v) in &delta.removed {
        rm_arcs.push((u, v));
        rm_arcs.push((v, u));
    }
    rm_arcs.sort_unstable();

    let new_arc_count = graph.num_arcs() + add_arcs.len() - rm_arcs.len();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut neighbors: Vec<NodeId> = Vec::with_capacity(new_arc_count);
    offsets.push(0);
    let (mut ai, mut ri) = (0usize, 0usize);
    for v in 0..n as NodeId {
        let old = graph.neighbors_slice(v);
        let mut oi = 0usize;
        // Merge old neighbors (minus removals) with additions; both
        // sides are sorted and disjoint (additions were absent, so
        // they never collide with surviving old entries).
        while oi < old.len() || (ai < add_arcs.len() && add_arcs[ai].0 == v) {
            let next_add = (ai < add_arcs.len() && add_arcs[ai].0 == v).then(|| add_arcs[ai].1);
            let next_old = (oi < old.len()).then(|| old[oi]);
            match (next_old, next_add) {
                (Some(o), add_t) if add_t.is_none() || o < add_t.unwrap() => {
                    oi += 1;
                    if ri < rm_arcs.len() && rm_arcs[ri] == (v, o) {
                        ri += 1; // dropped
                    } else {
                        neighbors.push(o);
                    }
                }
                (_, Some(t)) => {
                    ai += 1;
                    neighbors.push(t);
                }
                _ => unreachable!("loop condition guarantees one side"),
            }
        }
        offsets.push(neighbors.len());
    }
    debug_assert_eq!(neighbors.len(), new_arc_count);
    Ok((CsrGraph::from_parts(offsets, neighbors), delta))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, edges: &[Edge]) -> CsrGraph {
        CsrGraph::from_undirected_edges(n, edges)
    }

    #[test]
    fn add_and_remove_basic() {
        let graph = g(5, &[(0, 1), (1, 2), (2, 3)]);
        let (patched, delta) = patch_csr(&graph, &[(3, 4), (1, 0)], &[(1, 2)]).unwrap();
        assert_eq!(delta.added, vec![(3, 4)]);
        assert_eq!(delta.removed, vec![(1, 2)]);
        assert_eq!(delta.touched, vec![1, 2, 3, 4]);
        let expect = g(5, &[(0, 1), (2, 3), (3, 4)]);
        assert_eq!(patched.offsets(), expect.offsets());
        assert_eq!(patched.adjacency(), expect.adjacency());
    }

    #[test]
    fn noop_patch_is_empty_delta_and_identical_graph() {
        let graph = g(4, &[(0, 1), (2, 3)]);
        // Adding present edges, removing absent ones, self-loops.
        let (patched, delta) = patch_csr(&graph, &[(1, 0), (2, 2)], &[(0, 3)]).unwrap();
        assert!(delta.is_empty());
        assert_eq!(patched.offsets(), graph.offsets());
        assert_eq!(patched.adjacency(), graph.adjacency());
    }

    #[test]
    fn add_wins_over_remove_for_the_same_edge() {
        let graph = g(3, &[(0, 1)]);
        // Present edge in both lists: stays, no delta entry.
        let (_, delta) = patch_csr(&graph, &[(0, 1)], &[(0, 1)]).unwrap();
        assert!(delta.is_empty());
        // Absent edge in both lists: ends up added.
        let (patched, delta) = patch_csr(&graph, &[(1, 2)], &[(1, 2)]).unwrap();
        assert_eq!(delta.added, vec![(1, 2)]);
        assert!(patched.has_edge(1, 2));
    }

    #[test]
    fn out_of_range_is_typed_error_everywhere() {
        let graph = g(3, &[(0, 1)]);
        let err = patch_csr(&graph, &[(0, 7)], &[]).unwrap_err();
        assert_eq!(
            err,
            PatchError::VertexOutOfRange {
                vertex: 7,
                vertices: 3
            }
        );
        assert!(patch_csr(&graph, &[], &[(9, 0)]).is_err());
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn patch_equals_rebuild_on_random_batches() {
        // Oracle at the storage layer: patching must equal rebuilding
        // from the mutated edge set, for arbitrary seeded batches.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..40 {
            let n = 8 + (rng() % 40) as usize;
            let mut edges: Vec<Edge> = Vec::new();
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    if rng() % 100 < 20 {
                        edges.push((u, v));
                    }
                }
            }
            let graph = g(n, &edges);
            let batch = |rng: &mut dyn FnMut() -> u64| -> Vec<Edge> {
                (0..(rng() % 12))
                    .map(|_| ((rng() % n as u64) as NodeId, (rng() % n as u64) as NodeId))
                    .collect()
            };
            let add = batch(&mut rng);
            let remove = batch(&mut rng);
            let (patched, delta) = patch_csr(&graph, &add, &remove).unwrap();

            // Reference: set semantics on a sorted edge list.
            let canon = |es: &[Edge]| -> Vec<Edge> {
                let mut c: Vec<Edge> = es
                    .iter()
                    .filter(|&&(u, v)| u != v)
                    .map(|&(u, v)| (u.min(v), u.max(v)))
                    .collect();
                c.sort_unstable();
                c.dedup();
                c
            };
            let (add_c, rm_c) = (canon(&add), canon(&remove));
            let mut expect: Vec<Edge> = graph
                .edges_undirected()
                .filter(|e| rm_c.binary_search(e).is_err() || add_c.binary_search(e).is_ok())
                .collect();
            expect.extend(add_c.iter().copied());
            expect.sort_unstable();
            expect.dedup();
            let rebuilt = g(n, &expect);
            assert_eq!(
                patched.offsets(),
                rebuilt.offsets(),
                "round {round}: offsets diverged"
            );
            assert_eq!(patched.adjacency(), rebuilt.adjacency());

            // Delta endpoints really are the changed neighborhoods.
            for v in 0..n as NodeId {
                let same = graph.neighbors_slice(v) == patched.neighbors_slice(v);
                assert_eq!(same, !delta.touches(v), "vertex {v} in round {round}");
            }
        }
    }
}
