//! Format-roundtrip battery: any graph, written to **any** on-disk
//! format and reloaded, must come back as a byte-identical CSR
//! (equal offsets and targets — the precondition for the platform's
//! fingerprint-keyed result cache to treat the loads as one graph).
//!
//! Two layers: property-based roundtrips over arbitrary edge sets
//! (proptest shim — deterministic per test name, no shrinking), and a
//! deterministic sweep over **every** generator in `gms-gen`, so a
//! new generator or format quirk (isolated vertices, empty graphs,
//! hubs, bipartite halves) is caught automatically.

use gms_core::{CsrGraph, Edge, Graph, NodeId};
use gms_graph::io::{self, SnapshotGraph};
use gms_graph::CompressedCsr;
use proptest::collection::vec;
use proptest::prelude::*;

/// Writes and reloads `g` through one format, returning the reload.
fn through_edge_list(g: &CsrGraph) -> CsrGraph {
    let mut buf = Vec::new();
    io::write_edge_list(g, &mut buf).unwrap();
    io::load_undirected_from(buf.as_slice()).unwrap()
}

fn through_metis(g: &CsrGraph) -> CsrGraph {
    let mut buf = Vec::new();
    io::write_metis(g, &mut buf).unwrap();
    io::load_metis_from(buf.as_slice()).unwrap()
}

fn through_snapshot(g: &CsrGraph) -> CsrGraph {
    let mut buf = Vec::new();
    io::write_snapshot(g, &mut buf).unwrap();
    io::read_snapshot(&buf).unwrap()
}

fn through_mmap(g: &CsrGraph, tag: &str) -> CsrGraph {
    let path =
        std::env::temp_dir().join(format!("gms_roundtrip_{}_{tag}.gcsr", std::process::id()));
    io::save_snapshot(g, &path).unwrap();
    let reloaded = io::load_snapshot(&path).unwrap();
    std::fs::remove_file(&path).ok();
    reloaded
}

fn through_compressed(g: &CsrGraph) -> CsrGraph {
    CompressedCsr::from_csr(g).to_csr()
}

/// CsrGraph → CompressedCsr → v2 snapshot bytes → CompressedCsr →
/// CsrGraph, checking the auto-detecting reader keeps the body
/// compressed.
fn through_v2_snapshot(g: &CsrGraph, tag: &str) -> CsrGraph {
    let mut buf = Vec::new();
    io::write_snapshot_compressed(&CompressedCsr::from_csr(g), &mut buf).unwrap();
    match io::read_snapshot_auto(&buf).unwrap() {
        SnapshotGraph::Compressed(c) => c.to_csr(),
        SnapshotGraph::Raw(_) => panic!("{tag}: v2 snapshot must reload compressed"),
    }
}

fn through_v2_mmap(g: &CsrGraph, tag: &str) -> CsrGraph {
    let path = std::env::temp_dir().join(format!(
        "gms_roundtrip_v2_{}_{tag}.gcsr",
        std::process::id()
    ));
    io::save_snapshot_compressed(&CompressedCsr::from_csr(g), &path).unwrap();
    let snap = io::MmapSnapshot::open(&path).unwrap();
    assert!(snap.is_compressed(), "{tag}: v2 file must open compressed");
    let reloaded = snap.to_csr();
    std::fs::remove_file(&path).ok();
    reloaded
}

/// The cross-format oracle: every format — text, raw binary, and
/// compressed binary — reproduces `g` exactly.
fn assert_all_formats_roundtrip(g: &CsrGraph, tag: &str) {
    assert_eq!(&through_edge_list(g), g, "{tag}: edge list");
    assert_eq!(&through_metis(g), g, "{tag}: METIS");
    assert_eq!(&through_snapshot(g), g, "{tag}: snapshot (buffered)");
    assert_eq!(&through_mmap(g, tag), g, "{tag}: snapshot (mmap)");
    assert_eq!(&through_compressed(g), g, "{tag}: compressed CSR");
    assert_eq!(&through_v2_snapshot(g, tag), g, "{tag}: v2 snapshot");
    assert_eq!(&through_v2_mmap(g, tag), g, "{tag}: v2 snapshot (mmap)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_graphs_roundtrip_through_every_format(
        n in 1usize..48,
        raw in vec((0u32..48, 0u32..48), 0..160),
    ) {
        // Clamp endpoints into range; duplicates and self-loops are
        // deliberately kept in the input — the builder canonicalizes.
        let edges: Vec<Edge> = raw
            .iter()
            .map(|&(u, v)| (u % n as NodeId, v % n as NodeId))
            .collect();
        let g = CsrGraph::from_undirected_edges(n, &edges);
        assert_all_formats_roundtrip(&g, "arbitrary");
    }

    #[test]
    fn sparse_graphs_with_isolated_tails_roundtrip(
        n in 2usize..64,
        raw in vec((0u32..16, 0u32..16), 0..24),
    ) {
        // Edges confined to the first 16 vertices: everything above
        // is isolated, the case only an explicit vertex count (METIS
        // header, snapshot count, SNAP `# Nodes:` comment) preserves.
        let edges: Vec<Edge> = raw
            .iter()
            .map(|&(u, v)| (u.min(n as NodeId - 1), v.min(n as NodeId - 1)))
            .collect();
        let g = CsrGraph::from_undirected_edges(n, &edges);
        assert_all_formats_roundtrip(&g, "isolated-tail");
    }
}

#[test]
fn every_generator_roundtrips_through_every_format() {
    let gallery: Vec<(&str, CsrGraph)> = vec![
        ("gnp", gms_gen::gnp(130, 0.05, 7)),
        ("gnm", gms_gen::gnm(120, 400, 8)),
        ("kronecker", gms_gen::kronecker_default(8, 6, 9)),
        ("barabasi-albert", gms_gen::barabasi_albert(150, 4, 10)),
        ("watts-strogatz", gms_gen::watts_strogatz(140, 6, 0.1, 11)),
        ("bipartite", gms_gen::bipartite(40, 50, 0.08, 12)),
        ("complete", gms_gen::complete(24)),
        ("grid", gms_gen::grid(9, 13)),
        (
            "planted-cliques",
            gms_gen::planted_cliques(140, 0.02, 3, 7, 13).0,
        ),
        (
            "planted-partition",
            gms_gen::planted_partition(120, 4, 0.25, 0.01, 14).0,
        ),
        (
            "planted-clique-star",
            gms_gen::planted_clique_star(130, 0.02, 6, 4, 15).0,
        ),
        (
            "planted-dense-groups",
            gms_gen::planted_dense_groups(&gms_gen::PlantedConfig {
                n: 130,
                background_p: 0.02,
                sizes: vec![8, 8, 8],
                density: 0.85,
                seed: 16,
            })
            .0,
        ),
        ("empty", CsrGraph::from_undirected_edges(0, &[])),
        ("edgeless", CsrGraph::from_undirected_edges(17, &[])),
    ];
    for (name, g) in &gallery {
        assert_all_formats_roundtrip(g, name);
    }
}

#[test]
fn mmap_view_equals_owned_graph_without_copying_targets() {
    // The zero-copy view must serve the same access interface as the
    // owned CSR it snapshots.
    let g = gms_gen::kronecker_default(8, 7, 31);
    let path = std::env::temp_dir().join(format!("gms_view_eq_{}.gcsr", std::process::id()));
    io::save_snapshot(&g, &path).unwrap();
    let snap = io::MmapSnapshot::open(&path).unwrap();
    assert_eq!(snap.num_vertices(), g.num_vertices());
    assert_eq!(snap.num_arcs(), g.num_arcs());
    assert_eq!(snap.offsets(), g.offsets());
    assert_eq!(snap.targets(), g.adjacency());
    for v in g.vertices() {
        assert_eq!(snap.neighbors_slice(v), g.neighbors_slice(v));
    }
    std::fs::remove_file(&path).ok();
}
