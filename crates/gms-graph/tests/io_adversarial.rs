//! Adversarial-input battery: every parser in `gms_graph::io`, fed
//! every kind of malformed input, must return a typed
//! [`GraphIoError`] with the right line/cause — and **never** panic.
//! Together these tests exercise every variant of [`GraphIoCause`].
//!
//! Snapshot corruptions are checked through both read paths (the
//! buffered [`read_snapshot`] and the mmap-backed
//! [`MmapSnapshot::open`]) so the two validators cannot drift apart.

use gms_core::{CsrGraph, Graph};
use gms_graph::io::{
    load_metis_from, load_undirected, load_undirected_from, read_edge_list, read_snapshot,
    section_checksum, write_snapshot, write_snapshot_compressed, GraphIoCause, GraphIoError,
    MmapSnapshot, GCSR_HEADER_BYTES, GCSR_V2_HEADER_BYTES, GCSR_VERSION, GCSR_VERSION_COMPRESSED,
};
use gms_graph::CompressedCsr;

// ---------------------------------------------------------------- edge list

#[test]
fn edge_list_io_error_has_no_line() {
    let err = load_undirected("/definitely/not/a/path.el").unwrap_err();
    assert_eq!(err.line, None);
    assert!(matches!(err.cause, GraphIoCause::Io(_)));
}

#[test]
fn edge_list_missing_endpoint_mid_file() {
    let err = read_edge_list("0 1\n1 2\n3\n".as_bytes()).unwrap_err();
    assert_eq!(err.line, Some(3));
    assert!(matches!(err.cause, GraphIoCause::MissingEndpoint));
}

#[test]
fn edge_list_non_numeric_tokens() {
    for (text, line, bad) in [
        ("x 1\n", 1, "x"),
        ("0 1\n1 two\n", 2, "two"),
        ("0 1\n\n# c\n-3 4\n", 4, "-3"),
    ] {
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert_eq!(err.line, Some(line), "{text:?}");
        match err.cause {
            GraphIoCause::InvalidVertexId(field) => assert_eq!(field, bad),
            other => panic!("{text:?}: unexpected cause {other:?}"),
        }
    }
}

// -------------------------------------------------------------------- METIS

fn metis_err(text: &str) -> GraphIoError {
    load_metis_from(text.as_bytes()).unwrap_err()
}

#[test]
fn metis_missing_header() {
    for text in ["", "% only comments\n% here\n"] {
        let err = metis_err(text);
        assert!(
            matches!(err.cause, GraphIoCause::MetisHeader(_)),
            "{text:?}: {err:?}"
        );
    }
}

#[test]
fn metis_malformed_headers() {
    for text in [
        "5\n",         // one field
        "5 4 1 2 9\n", // five fields
        "x 4\n",       // non-numeric n
        "5 y\n",       // non-numeric m
        "5 4 2\n",     // fmt digit outside {0,1}
        "5 4 0011\n",  // fmt too long
        "5 4 011 0\n", // ncon of zero
    ] {
        let err = metis_err(text);
        assert_eq!(err.line, Some(1), "{text:?}");
        assert!(
            matches!(err.cause, GraphIoCause::MetisHeader(_)),
            "{text:?}: {err:?}"
        );
    }
}

#[test]
fn metis_too_few_vertex_lines() {
    let err = metis_err("3 1\n2\n1\n");
    assert!(matches!(
        err.cause,
        GraphIoCause::MetisVertexCount {
            declared: 3,
            actual: 2
        }
    ));
}

#[test]
fn metis_too_many_vertex_lines() {
    let err = metis_err("2 1\n2\n1\n1 2\n");
    assert_eq!(err.line, Some(4));
    assert!(matches!(
        err.cause,
        GraphIoCause::MetisVertexCount { declared: 2, .. }
    ));
}

#[test]
fn metis_edge_count_mismatch() {
    // Header says 2 edges (4 entries); body holds one edge (2).
    let err = metis_err("2 2\n2\n1\n");
    assert!(matches!(
        err.cause,
        GraphIoCause::MetisEdgeCount {
            declared: 2,
            entries: 2
        }
    ));
}

#[test]
fn metis_huge_declared_edge_count_is_rejected_not_allocated() {
    // A absurd m must fail the entry check, not exhaust memory up
    // front.
    let err = metis_err("2 18446744073709551615\n2\n1\n");
    assert!(matches!(
        err.cause,
        GraphIoCause::MetisEdgeCount { entries: 2, .. }
    ));
}

#[test]
fn metis_adjacency_out_of_range() {
    // 0 is out of range in the 1-indexed format; so is n+1.
    let err = metis_err("2 1\n2\n0\n");
    assert_eq!(err.line, Some(3));
    assert!(matches!(
        err.cause,
        GraphIoCause::VertexOutOfRange { id: 0, n: 2 }
    ));
    let err = metis_err("2 1\n2\n3\n");
    assert!(matches!(
        err.cause,
        GraphIoCause::VertexOutOfRange { id: 3, n: 2 }
    ));
}

#[test]
fn metis_self_loops_are_rejected() {
    // Forbidden by the format — and accepting them would let the
    // edge-count check pass while the builder drops the loop.
    let err = metis_err("2 1\n1 1\n\n");
    assert_eq!(err.line, Some(2));
    assert!(matches!(
        err.cause,
        GraphIoCause::MetisSelfLoop { vertex: 1 }
    ));
}

#[test]
fn metis_duplicates_compensating_omissions_are_caught() {
    // Raw entry count matches 2m, but deduplication leaves only one
    // distinct edge against the two declared.
    let err = metis_err("3 2\n2 2\n1 1\n\n");
    assert!(matches!(
        err.cause,
        GraphIoCause::MetisEdgeCount {
            declared: 2,
            entries: 2
        }
    ));
}

#[test]
fn metis_duplicate_standing_in_for_a_missing_mirror_is_caught() {
    // Vertex 1 lists vertex 2 twice; vertex 2 lists nothing. The raw
    // entry count (2) matches 2m and the deduplicated edge count
    // matches m, but the lists are not symmetric — each edge must
    // appear exactly once in each endpoint's list.
    let err = metis_err("2 1\n2 2\n\n");
    assert!(matches!(
        err.cause,
        GraphIoCause::MetisEdgeCount {
            declared: 1,
            entries: 1
        }
    ));
}

#[test]
fn metis_non_numeric_adjacency_token() {
    let err = metis_err("2 1\n2\nfoo\n");
    assert_eq!(err.line, Some(3));
    assert!(matches!(err.cause, GraphIoCause::InvalidVertexId(ref f) if f == "foo"));
}

#[test]
fn metis_bad_and_missing_weights() {
    // fmt=001: every neighbor needs a numeric edge weight.
    let err = metis_err("2 1 001\n2 w\n1 1\n");
    assert_eq!(err.line, Some(2));
    assert!(matches!(err.cause, GraphIoCause::InvalidWeight(ref f) if f == "w"));
    let err = metis_err("2 1 001\n2\n1 1\n");
    assert!(matches!(err.cause, GraphIoCause::InvalidWeight(ref f) if f == "<missing>"));
    // fmt=010: the vertex weight itself is malformed.
    let err = metis_err("2 1 010\nbad 2\n7 1\n");
    assert!(matches!(err.cause, GraphIoCause::InvalidWeight(ref f) if f == "bad"));
}

// ----------------------------------------------------------------- snapshot

fn sample_bytes() -> Vec<u8> {
    let g = CsrGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
    let mut buf = Vec::new();
    write_snapshot(&g, &mut buf).unwrap();
    buf
}

/// Checks one corrupt buffer through both snapshot read paths and
/// asserts both report the same cause (by discriminant).
fn snapshot_err(bytes: &[u8], what: &str) -> GraphIoError {
    let buffered = read_snapshot(bytes).unwrap_err();
    let path = std::env::temp_dir().join(format!(
        "gms_adversarial_{}_{what}.gcsr",
        std::process::id()
    ));
    std::fs::write(&path, bytes).unwrap();
    let mapped = MmapSnapshot::open(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        std::mem::discriminant(&buffered.cause),
        std::mem::discriminant(&mapped.cause),
        "{what}: buffered and mmap paths disagree: {buffered:?} vs {mapped:?}"
    );
    assert_eq!(buffered.line, None, "{what}: binary errors carry no line");
    buffered
}

/// Rewrites both section checksums so corruption *past* the checksum
/// check can be tested in isolation.
fn fix_checksums(bytes: &mut [u8]) {
    let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let targets_start = GCSR_HEADER_BYTES + 8 * (n + 1);
    let offsets_sum = section_checksum(&bytes[GCSR_HEADER_BYTES..targets_start]);
    let targets_sum = section_checksum(&bytes[targets_start..]);
    bytes[24..32].copy_from_slice(&offsets_sum.to_le_bytes());
    bytes[32..40].copy_from_slice(&targets_sum.to_le_bytes());
}

#[test]
fn snapshot_bad_magic() {
    let mut bytes = sample_bytes();
    bytes[0] = b'X';
    let err = snapshot_err(&bytes, "magic");
    assert!(matches!(
        err.cause,
        GraphIoCause::BadMagic {
            found: [b'X', b'C', b'S', b'R']
        }
    ));
    // A short file that still shows a foreign magic reports it too.
    let err = snapshot_err(b"PK\x03\x04", "zip");
    assert!(matches!(err.cause, GraphIoCause::BadMagic { .. }));
}

#[test]
fn snapshot_unsupported_version() {
    let mut bytes = sample_bytes();
    bytes[4..8].copy_from_slice(&(GCSR_VERSION + 9).to_le_bytes());
    let err = snapshot_err(&bytes, "version");
    assert!(matches!(
        err.cause,
        GraphIoCause::UnsupportedVersion { found } if found == GCSR_VERSION + 9
    ));
}

#[test]
fn snapshot_truncation_at_every_section() {
    let bytes = sample_bytes();
    // Shorter than a header, mid-offsets, mid-targets, one byte shy.
    for cut in [
        0,
        10,
        GCSR_HEADER_BYTES + 3,
        bytes.len() - 7,
        bytes.len() - 1,
    ] {
        let err = snapshot_err(&bytes[..cut], "truncated");
        assert!(
            matches!(err.cause, GraphIoCause::SnapshotSize { .. }),
            "cut at {cut}: {err:?}"
        );
    }
}

#[test]
fn snapshot_trailing_garbage() {
    let mut bytes = sample_bytes();
    let expected = bytes.len() as u64;
    bytes.push(0);
    let err = snapshot_err(&bytes, "trailing");
    assert!(matches!(
        err.cause,
        GraphIoCause::SnapshotSize { expected: e, actual } if e == expected && actual == expected + 1
    ));
}

#[test]
fn snapshot_corrupt_sections_fail_their_checksum() {
    let pristine = sample_bytes();

    let mut bytes = pristine.clone();
    bytes[GCSR_HEADER_BYTES + 1] ^= 0xff; // inside offsets
    let err = snapshot_err(&bytes, "offsets");
    assert!(matches!(
        err.cause,
        GraphIoCause::ChecksumMismatch {
            section: "offsets",
            ..
        }
    ));

    let mut bytes = pristine.clone();
    *bytes.last_mut().unwrap() ^= 0x01; // inside targets
    let err = snapshot_err(&bytes, "targets");
    assert!(
        matches!(
            err.cause,
            GraphIoCause::ChecksumMismatch { section: "targets", stored, computed } if stored != computed
        ),
        "{err:?}"
    );

    // Corrupting a stored checksum itself is also a mismatch.
    let mut bytes = pristine;
    bytes[26] ^= 0x10;
    let err = snapshot_err(&bytes, "storedsum");
    assert!(matches!(
        err.cause,
        GraphIoCause::ChecksumMismatch {
            section: "offsets",
            ..
        }
    ));
}

#[test]
fn snapshot_csr_invariants_hold_even_with_valid_checksums() {
    // Non-monotone offsets.
    let mut bytes = sample_bytes();
    bytes[GCSR_HEADER_BYTES + 8..GCSR_HEADER_BYTES + 16].copy_from_slice(&u64::MAX.to_le_bytes());
    fix_checksums(&mut bytes);
    let err = snapshot_err(&bytes, "monotone");
    assert!(
        matches!(err.cause, GraphIoCause::SnapshotFormat { .. }),
        "{err:?}"
    );

    // First offset not zero (compensated to stay monotone).
    let mut bytes = sample_bytes();
    bytes[GCSR_HEADER_BYTES..GCSR_HEADER_BYTES + 8].copy_from_slice(&1u64.to_le_bytes());
    fix_checksums(&mut bytes);
    let err = snapshot_err(&bytes, "firstzero");
    assert!(matches!(
        err.cause,
        GraphIoCause::SnapshotFormat { detail } if detail.contains("start at 0")
    ));

    // Final offset not spanning the targets.
    let mut bytes = sample_bytes();
    let n = 5usize;
    let last = GCSR_HEADER_BYTES + 8 * n;
    bytes[last..last + 8].copy_from_slice(&3u64.to_le_bytes());
    fix_checksums(&mut bytes);
    let err = snapshot_err(&bytes, "span");
    assert!(matches!(
        err.cause,
        GraphIoCause::SnapshotFormat { detail } if detail.contains("arc count")
    ));

    // A target pointing past n.
    let mut bytes = sample_bytes();
    let targets_start = GCSR_HEADER_BYTES + 8 * (n + 1);
    bytes[targets_start..targets_start + 4].copy_from_slice(&99u32.to_le_bytes());
    fix_checksums(&mut bytes);
    let err = snapshot_err(&bytes, "range");
    assert!(matches!(
        err.cause,
        GraphIoCause::VertexOutOfRange { id: 99, n: 5 }
    ));

    // An unsorted neighborhood (vertex 0's is [1, 2] in the sample;
    // swap to [2, 1]).
    let mut bytes = sample_bytes();
    bytes[targets_start..targets_start + 4].copy_from_slice(&2u32.to_le_bytes());
    bytes[targets_start + 4..targets_start + 8].copy_from_slice(&1u32.to_le_bytes());
    fix_checksums(&mut bytes);
    let err = snapshot_err(&bytes, "sorted");
    assert!(matches!(
        err.cause,
        GraphIoCause::SnapshotFormat { detail } if detail.contains("sorted")
    ));

    // A corrupt header count implying an absurd length must fail the
    // size check without any allocation.
    let mut bytes = sample_bytes();
    bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = snapshot_err(&bytes, "hugecount");
    assert!(matches!(err.cause, GraphIoCause::SnapshotSize { .. }));

    // Regression: an intermediate offset larger than the arc count
    // whose successors later dip back down (so the final offset still
    // equals the arc count) must be rejected as non-monotone — not
    // walk the targets section out of bounds and panic.
    let mut bytes = sample_bytes();
    bytes[GCSR_HEADER_BYTES + 8..GCSR_HEADER_BYTES + 16].copy_from_slice(&1000u64.to_le_bytes());
    fix_checksums(&mut bytes);
    let err = snapshot_err(&bytes, "overshoot");
    assert!(
        matches!(
            err.cause,
            GraphIoCause::SnapshotFormat { detail } if detail.contains("monotonically")
        ),
        "{err:?}"
    );
}

// ------------------------------------------------------ snapshot v2

fn v2_sample_bytes() -> Vec<u8> {
    let g = CsrGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
    let mut buf = Vec::new();
    write_snapshot_compressed(&CompressedCsr::from_csr(&g), &mut buf).unwrap();
    buf
}

/// Rewrites both v2 section checksums so corruption *past* the
/// checksum check can be tested in isolation.
fn fix_v2_checksums(bytes: &mut [u8]) {
    let index_len = u64::from_le_bytes(bytes[32..40].try_into().unwrap()) as usize;
    let payload_start = GCSR_V2_HEADER_BYTES + index_len;
    let index_sum = section_checksum(&bytes[GCSR_V2_HEADER_BYTES..payload_start]);
    let payload_sum = section_checksum(&bytes[payload_start..]);
    bytes[48..56].copy_from_slice(&index_sum.to_le_bytes());
    bytes[56..64].copy_from_slice(&payload_sum.to_le_bytes());
}

#[test]
fn v2_truncation_at_every_section() {
    let bytes = v2_sample_bytes();
    let index_len = u64::from_le_bytes(bytes[32..40].try_into().unwrap()) as usize;
    // Mid-header, mid-index, mid-payload, one byte shy.
    for cut in [
        10,
        GCSR_V2_HEADER_BYTES - 1,
        GCSR_V2_HEADER_BYTES + index_len / 2,
        bytes.len() - 3,
        bytes.len() - 1,
    ] {
        let err = snapshot_err(&bytes[..cut], "v2truncated");
        assert!(
            matches!(err.cause, GraphIoCause::SnapshotSize { .. }),
            "cut at {cut}: {err:?}"
        );
    }
}

#[test]
fn v2_corrupt_sections_fail_their_checksum() {
    let pristine = v2_sample_bytes();
    let index_len = u64::from_le_bytes(pristine[32..40].try_into().unwrap()) as usize;

    let mut bytes = pristine.clone();
    bytes[GCSR_V2_HEADER_BYTES + 1] ^= 0xff; // inside the index
    let err = snapshot_err(&bytes, "v2index");
    assert!(matches!(
        err.cause,
        GraphIoCause::ChecksumMismatch {
            section: "index",
            ..
        }
    ));

    let mut bytes = pristine.clone();
    bytes[GCSR_V2_HEADER_BYTES + index_len + 1] ^= 0x01; // inside the payload
    let err = snapshot_err(&bytes, "v2payload");
    assert!(matches!(
        err.cause,
        GraphIoCause::ChecksumMismatch {
            section: "payload",
            ..
        }
    ));

    // Corrupting a stored checksum itself is also a mismatch.
    let mut bytes = pristine;
    bytes[50] ^= 0x10;
    let err = snapshot_err(&bytes, "v2storedsum");
    assert!(matches!(
        err.cause,
        GraphIoCause::ChecksumMismatch {
            section: "index",
            ..
        }
    ));
}

#[test]
fn v2_header_on_a_v1_body_is_rejected() {
    // Flip a valid v1 file's version field to 2: the reinterpreted
    // header must fail validation, never serve garbage. (With the v1
    // geometry, the bytes under the v2 scheme field are the vertex
    // count — not a defined scheme.)
    let mut bytes = sample_bytes();
    bytes[4..8].copy_from_slice(&GCSR_VERSION_COMPRESSED.to_le_bytes());
    let err = snapshot_err(&bytes, "v2headerv1body");
    assert!(
        matches!(
            err.cause,
            GraphIoCause::SnapshotFormat { .. } | GraphIoCause::SnapshotSize { .. }
        ),
        "{err:?}"
    );

    // And the reverse: a v1 version field on a v2 body.
    let mut bytes = v2_sample_bytes();
    bytes[4..8].copy_from_slice(&GCSR_VERSION.to_le_bytes());
    let err = snapshot_err(&bytes, "v1headerv2body");
    assert!(
        matches!(
            err.cause,
            GraphIoCause::SnapshotFormat { .. }
                | GraphIoCause::SnapshotSize { .. }
                | GraphIoCause::ChecksumMismatch { .. }
        ),
        "{err:?}"
    );
}

#[test]
fn v2_unknown_scheme_and_flags_are_rejected() {
    let mut bytes = v2_sample_bytes();
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
    let err = snapshot_err(&bytes, "v2scheme");
    assert!(matches!(
        err.cause,
        GraphIoCause::SnapshotFormat { detail } if detail.contains("scheme")
    ));

    let mut bytes = v2_sample_bytes();
    bytes[12..16].copy_from_slice(&0x8000_0000u32.to_le_bytes());
    let err = snapshot_err(&bytes, "v2flags");
    assert!(matches!(
        err.cause,
        GraphIoCause::SnapshotFormat { detail } if detail.contains("flags")
    ));
}

#[test]
fn v2_structural_corruption_holds_even_with_valid_checksums() {
    // A payload gap of zero decodes as a duplicate neighbor. In the
    // sample, vertex 0's neighborhood is [1, 2]: its payload bytes
    // are the varints [1, 1] — zero the second gap.
    let pristine = v2_sample_bytes();
    let index_len = u64::from_le_bytes(pristine[32..40].try_into().unwrap()) as usize;
    let payload_start = GCSR_V2_HEADER_BYTES + index_len;

    let mut bytes = pristine.clone();
    bytes[payload_start + 1] = 0;
    fix_v2_checksums(&mut bytes);
    let err = snapshot_err(&bytes, "v2duplicate");
    assert!(
        matches!(
            err.cause,
            GraphIoCause::SnapshotFormat { detail } if detail.contains("sorted")
        ),
        "{err:?}"
    );

    // A gap pushing the prefix sum past n.
    let mut bytes = pristine.clone();
    bytes[payload_start + 1] = 0x7f;
    fix_v2_checksums(&mut bytes);
    let err = snapshot_err(&bytes, "v2range");
    assert!(
        matches!(err.cause, GraphIoCause::VertexOutOfRange { .. }),
        "{err:?}"
    );

    // An arc count disagreeing with the degree sum.
    let mut bytes = pristine.clone();
    bytes[24..32].copy_from_slice(&1234u64.to_le_bytes());
    let err = snapshot_err(&bytes, "v2arcs");
    assert!(
        matches!(
            err.cause,
            GraphIoCause::SnapshotFormat { detail } if detail.contains("arc count")
        ),
        "{err:?}"
    );

    // A corrupt header length implying an absurd file must fail the
    // size check without any allocation.
    let mut bytes = pristine;
    bytes[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = snapshot_err(&bytes, "v2hugeindex");
    assert!(matches!(err.cause, GraphIoCause::SnapshotSize { .. }));
}

#[test]
fn edge_list_huge_nodes_header_is_ignored_not_allocated() {
    // Regression: a hostile `# Nodes:` comment must not drive the
    // loader into an unrepresentable allocation; counts beyond the
    // NodeId range are ignored and the edges size the graph.
    let text = "# Nodes: 18446744073709551615 Edges: 1\n0 1\n";
    let g = load_undirected_from(text.as_bytes()).unwrap();
    assert_eq!(g.num_vertices(), 2);
}

// ------------------------------------------------- cross-parser consistency

#[test]
fn empty_input_is_an_empty_graph_for_edge_lists_but_not_metis() {
    // An empty edge list is a valid (empty) graph; METIS requires a
    // header; an empty snapshot is not even a header.
    let g = load_undirected_from("".as_bytes()).unwrap();
    assert_eq!(g.num_vertices(), 0);
    assert!(matches!(metis_err("").cause, GraphIoCause::MetisHeader(_)));
    assert!(matches!(
        read_snapshot(b"").unwrap_err().cause,
        GraphIoCause::SnapshotSize { .. }
    ));
}
