//! Pins the no-allocation contract of the compressed decode hot path.
//!
//! A kernel loop over a [`CompressedCsr`] calls `decode_into` with a
//! reused scratch buffer; after one warmup pass that has grown the
//! buffer to the maximum degree, subsequent decodes — and the
//! skip-sampled `has_edge` probes — must not touch the allocator at
//! all. A regression that quietly materializes a fresh `Vec` per
//! neighborhood would still be *correct*, so only an allocation
//! counter can catch it. This test swaps in a counting global
//! allocator and asserts zero allocations across a full
//! every-vertex decode sweep and an `has_edge` probe matrix.
//!
//! Everything runs in a single `#[test]` because the allocator is
//! process-global: concurrent tests would pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use gms_core::{Graph, NodeId};
use gms_graph::CompressedCsr;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` and returns how many allocations it performed.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn warmed_decode_and_has_edge_never_allocate() {
    // A skewed graph (hubs + fringe) so buffer reuse is exercised
    // across wildly different degrees; built BEFORE measurement.
    let graph = gms_gen::kronecker_default(10, 12, 7);
    let compressed = CompressedCsr::from_csr(&graph);
    let n = compressed.num_vertices() as NodeId;

    // Warmup: one decode of the highest-degree vertex grows the
    // scratch buffer to its high-water mark.
    let hub = (0..n).max_by_key(|&v| compressed.degree(v)).unwrap();
    let mut scratch: Vec<NodeId> = Vec::new();
    compressed.decode_into(hub, &mut scratch);

    // A full decode sweep into the warmed buffer: zero allocations,
    // and every neighborhood matches the raw CSR.
    let mut total_decoded = 0usize;
    let allocs = allocations_during(|| {
        for v in 0..n {
            compressed.decode_into(v, &mut scratch);
            total_decoded += scratch.len();
        }
    });
    assert_eq!(total_decoded, graph.num_arcs(), "decode sweep lost arcs");
    assert_eq!(
        allocs, 0,
        "decode_into allocated during the warmed sweep — the hot path \
         must reuse the caller's buffer, never materialize its own"
    );

    // Correctness of the sweep it just measured (re-decoded outside
    // the counter window; comparisons may allocate freely here).
    for v in (0..n).step_by(37) {
        compressed.decode_into(v, &mut scratch);
        let expected: Vec<NodeId> = graph.neighbors(v).collect();
        assert_eq!(scratch, expected, "vertex {v} decoded wrong");
    }

    // has_edge runs the skip-sampled probe: no scratch at all, so it
    // must be allocation-free from the first call.
    let probes: Vec<(NodeId, NodeId)> = (0..n)
        .step_by(13)
        .flat_map(|u| [(u, (u * 7 + 1) % n), (u, hub), (hub, u)])
        .collect();
    let expected: Vec<bool> = probes.iter().map(|&(u, v)| graph.has_edge(u, v)).collect();
    let mut got = vec![false; probes.len()];
    let allocs = allocations_during(|| {
        for (slot, &(u, v)) in got.iter_mut().zip(&probes) {
            *slot = compressed.has_edge(u, v);
        }
    });
    assert_eq!(got, expected, "has_edge disagrees with the raw CSR");
    assert_eq!(allocs, 0, "has_edge allocated during probes");
}
