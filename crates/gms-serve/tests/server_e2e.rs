//! End-to-end protocol tests: a real server on an ephemeral port,
//! driven over real sockets — every endpoint, the typed error
//! surface, cross-worker cache behavior, invalidation on reload,
//! queue-full backpressure, and graceful shutdown.

use gms_serve::{Client, Json, ServeConfig, Server};

fn start(workers: usize, queue: usize) -> (gms_serve::ServerHandle, Client) {
    let handle = Server::start(ServeConfig {
        workers,
        queue_capacity: queue,
        ..ServeConfig::default()
    })
    .expect("server start");
    let client = Client::connect(handle.addr()).expect("client connect");
    (handle, client)
}

fn edge_list(graph: &gms_core::CsrGraph) -> String {
    let mut bytes = Vec::new();
    gms_graph::io::write_edge_list(graph, &mut bytes).unwrap();
    String::from_utf8(bytes).unwrap()
}

fn assert_ok(v: &Json) {
    assert_eq!(
        v.get("ok"),
        Some(&Json::Bool(true)),
        "expected ok: {}",
        v.render()
    );
}

fn error_code(v: &Json) -> &str {
    assert_eq!(
        v.get("ok"),
        Some(&Json::Bool(false)),
        "expected error: {}",
        v.render()
    );
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("typed error code")
}

#[test]
fn full_protocol_round_trip() {
    let (handle, mut client) = start(2, 16);

    // Health before any graph is loaded.
    let health = client.health().unwrap();
    assert_ok(&health);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("serving"));
    assert_eq!(health.get("graphs"), Some(&Json::Int(0)));
    assert!(health.get("kernels").and_then(Json::as_i64).unwrap() >= 15);

    // Kernel introspection carries schemas.
    let kernels = client.kernels().unwrap();
    assert_ok(&kernels);
    let list = kernels.get("kernels").and_then(Json::as_array).unwrap();
    let kclique = list
        .iter()
        .find(|k| k.get("name").and_then(Json::as_str) == Some("k-clique"))
        .expect("k-clique registered");
    assert!(kclique
        .get("params")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .any(|p| p.get("name").and_then(Json::as_str) == Some("k")));

    // Load a triangle + tail inline; degenerate but exact.
    let loaded = client
        .load_inline("toy", "edge-list", "0 1\n1 2\n2 0\n2 3\n")
        .unwrap();
    assert_ok(&loaded);
    assert_eq!(loaded.get("vertices"), Some(&Json::Int(4)));
    assert_eq!(loaded.get("edges"), Some(&Json::Int(4)));
    assert_eq!(loaded.get("replaced"), Some(&Json::Bool(false)));

    // Run with typed params; then the identical request hits.
    let first = client.run("triangle-count", "toy", &[]).unwrap();
    assert_ok(&first);
    assert_eq!(first.get("patterns"), Some(&Json::Int(1)));
    assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
    let second = client.run("triangle-count", "toy", &[]).unwrap();
    assert_ok(&second);
    assert_eq!(second.get("cached"), Some(&Json::Bool(true)));

    // The id member is echoed, including on errors.
    let tagged = client
        .request(&Json::object([
            ("op", Json::from("health")),
            ("id", Json::from("probe-1")),
        ]))
        .unwrap();
    assert_eq!(tagged.get("id").and_then(Json::as_str), Some("probe-1"));

    // Typed error surface.
    assert_eq!(
        error_code(&client.request_raw("{not json").unwrap()),
        "bad-json"
    );
    assert_eq!(
        error_code(&client.request_raw(r#"{"op":"warp"}"#).unwrap()),
        "bad-request"
    );
    assert_eq!(
        error_code(&client.run("no-such-kernel", "toy", &[]).unwrap()),
        "unknown-kernel"
    );
    assert_eq!(
        error_code(&client.run("triangle-count", "nope", &[]).unwrap()),
        "unknown-graph"
    );
    assert_eq!(
        error_code(
            &client
                .run("k-clique", "toy", &[("bogus", Json::Int(1))])
                .unwrap()
        ),
        "unknown-param"
    );
    assert_eq!(
        error_code(
            &client
                .run("k-clique", "toy", &[("k", Json::from("three"))])
                .unwrap()
        ),
        "bad-param"
    );
    assert_eq!(
        error_code(
            &client
                .load_path("bad", "gcsr", "/no/such/file.gcsr")
                .unwrap()
        ),
        "io-error"
    );

    // Batch: two fresh, one duplicate, one error — one response.
    let batch = client
        .request(&Json::object([
            ("op", Json::from("batch")),
            (
                "requests",
                Json::Array(vec![
                    Json::object([
                        ("kernel", Json::from("k-clique")),
                        ("graph", Json::from("toy")),
                        ("params", Json::object([("k", Json::Int(3))])),
                    ]),
                    Json::object([
                        ("kernel", Json::from("triangle-count")),
                        ("graph", Json::from("toy")),
                    ]),
                    Json::object([
                        ("kernel", Json::from("triangle-count")),
                        ("graph", Json::from("missing")),
                    ]),
                ]),
            ),
        ]))
        .unwrap();
    assert_ok(&batch);
    let results = batch.get("results").and_then(Json::as_array).unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].get("patterns"), Some(&Json::Int(1)));
    assert_eq!(results[1].get("cached"), Some(&Json::Bool(true)));
    assert_eq!(error_code(&results[2]), "unknown-graph");

    // Stats reflect all of the above.
    let stats = client.stats().unwrap();
    assert_ok(&stats);
    let cache = stats.get("cache").unwrap();
    assert!(cache.get("hits").and_then(Json::as_i64).unwrap() >= 2);
    assert!(cache.get("misses").and_then(Json::as_i64).unwrap() >= 2);
    let server = stats.get("server").unwrap();
    assert!(server.get("malformed").and_then(Json::as_i64).unwrap() >= 1);
    assert_eq!(server.get("workers"), Some(&Json::Int(2)));
    let graphs = stats.get("graphs").and_then(Json::as_array).unwrap();
    assert_eq!(graphs.len(), 1);
    assert_eq!(graphs[0].get("name").and_then(Json::as_str), Some("toy"));

    // Graceful shutdown: acknowledged, then the process winds down.
    let ack = client.shutdown().unwrap();
    assert_eq!(
        ack.get("status").and_then(Json::as_str),
        Some("shutting-down")
    );
    handle.join();
}

#[test]
fn compressed_snapshots_serve_kernels_and_share_the_cache_with_raw() {
    let (handle, mut client) = start(2, 16);
    let graph = gms_gen::planted_cliques(200, 0.03, 3, 6, 7).0;
    let expected = gms_pattern::triangle_count_rank_merge(&graph) as i64;

    // A v2 (gap-compressed) snapshot on disk, loaded by path: the
    // server keeps it compressed and says so.
    let path = std::env::temp_dir().join(format!("gms_serve_v2_{}.gcsr", std::process::id()));
    gms_graph::io::save_snapshot_compressed(&gms_graph::CompressedCsr::from_csr(&graph), &path)
        .unwrap();
    let loaded = client
        .load_path("gz", "gcsr", path.to_str().unwrap())
        .unwrap();
    assert_ok(&loaded);
    assert_eq!(
        loaded.get("compression").and_then(Json::as_str),
        Some("gap")
    );
    let gap_resident = loaded.get("resident_bytes").and_then(Json::as_i64).unwrap();
    assert!(gap_resident > 0);

    // A pattern kernel end-to-end over the compressed backend.
    let mined = client.run("triangle-count", "gz", &[]).unwrap();
    assert_ok(&mined);
    assert_eq!(mined.get("patterns"), Some(&Json::Int(expected)));
    assert_eq!(mined.get("cached"), Some(&Json::Bool(false)));

    // The same graph loaded raw fingerprints identically, so the
    // compressed run is served from the cache to the raw backend.
    let raw = client
        .load_inline("graw", "edge-list", &edge_list(&graph))
        .unwrap();
    assert_ok(&raw);
    assert_eq!(raw.get("compression").and_then(Json::as_str), Some("raw"));
    assert_eq!(raw.get("fingerprint"), loaded.get("fingerprint"));
    let hit = client.run("triangle-count", "graw", &[]).unwrap();
    assert_eq!(hit.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(hit.get("patterns"), Some(&Json::Int(expected)));

    // `compression: "gap"` on load recompresses a text-format arrival.
    let recompressed = client
        .request(&Json::object([
            ("op", Json::from("load")),
            ("graph", Json::from("gz2")),
            ("format", Json::from("edge-list")),
            ("data", Json::from(edge_list(&graph))),
            ("compression", Json::from("gap")),
        ]))
        .unwrap();
    assert_ok(&recompressed);
    assert_eq!(
        recompressed.get("compression").and_then(Json::as_str),
        Some("gap")
    );
    assert_eq!(recompressed.get("fingerprint"), loaded.get("fingerprint"));
    let hit2 = client.run("triangle-count", "gz2", &[]).unwrap();
    assert_eq!(hit2.get("cached"), Some(&Json::Bool(true)));

    // Stats report per-graph residency; the compressed copies are
    // smaller than the raw CSR.
    let stats = client.stats().unwrap();
    let graphs = stats.get("graphs").and_then(Json::as_array).unwrap();
    let resident = |name: &str| {
        graphs
            .iter()
            .find(|g| g.get("name").and_then(Json::as_str) == Some(name))
            .and_then(|g| g.get("resident_bytes"))
            .and_then(Json::as_i64)
            .unwrap()
    };
    assert!(resident("gz") < resident("graw"));
    assert_eq!(resident("gz"), gap_resident);

    std::fs::remove_file(&path).ok();
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn reload_invalidates_replaced_content() {
    let (handle, mut client) = start(2, 16);
    let g1 = gms_gen::planted_cliques(80, 0.04, 2, 5, 11).0;
    let g2 = gms_gen::gnp(70, 0.06, 5);

    client
        .load_inline("g", "edge-list", &edge_list(&g1))
        .unwrap();
    let fresh = client.run("triangle-count", "g", &[]).unwrap();
    assert_eq!(fresh.get("cached"), Some(&Json::Bool(false)));

    // Same content again: replaced but nothing invalidated, and the
    // cached outcome survives.
    let same = client
        .load_inline("g", "edge-list", &edge_list(&g1))
        .unwrap();
    assert_eq!(same.get("replaced"), Some(&Json::Bool(true)));
    assert_eq!(same.get("invalidated"), Some(&Json::Int(0)));
    let hit = client.run("triangle-count", "g", &[]).unwrap();
    assert_eq!(hit.get("cached"), Some(&Json::Bool(true)));

    // New content: the old outcome is dropped and the rerun is fresh.
    let replaced = client
        .load_inline("g", "edge-list", &edge_list(&g2))
        .unwrap();
    assert_eq!(replaced.get("replaced"), Some(&Json::Bool(true)));
    assert_eq!(replaced.get("invalidated"), Some(&Json::Int(1)));
    let recomputed = client.run("triangle-count", "g", &[]).unwrap();
    assert_eq!(recomputed.get("cached"), Some(&Json::Bool(false)));

    let stats = client.stats().unwrap();
    assert_eq!(
        stats.get("cache").and_then(|c| c.get("invalidated")),
        Some(&Json::Int(1))
    );

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn edge_mutations_over_the_wire_migrate_the_cache() {
    use gms_core::Graph;
    let (handle, mut client) = start(2, 16);
    let graph = gms_gen::planted_cliques(200, 0.03, 3, 6, 7).0;
    let loaded = client
        .load_inline("g", "edge-list", &edge_list(&graph))
        .unwrap();
    assert_ok(&loaded);
    assert_eq!(loaded.get("version"), Some(&Json::Int(0)));
    let base_fp = loaded.get("base_fingerprint").cloned().unwrap();
    assert_eq!(loaded.get("fingerprint"), Some(&base_fp));

    // Three cache lines with distinct delta sensitivities.
    client.run("triangle-count", "g", &[]).unwrap();
    client.run("order-random", "g", &[]).unwrap();
    client.run("order-degree", "g", &[]).unwrap();

    // Remove two real edges in one batch.
    let v = (0..graph.num_vertices() as u32)
        .find(|&v| graph.degree(v) >= 2)
        .unwrap();
    let ns: Vec<u32> = graph.neighbors(v).take(2).collect();
    let removals = [(v, ns[0]), (v, ns[1])];
    let removed = client.remove_edges("g", &removals).unwrap();
    assert_ok(&removed);
    assert_eq!(removed.get("version"), Some(&Json::Int(1)));
    assert_eq!(removed.get("base_fingerprint"), Some(&base_fp));
    assert_ne!(removed.get("fingerprint"), Some(&base_fp));
    assert_eq!(removed.get("removed"), Some(&Json::Int(2)));
    let cache = removed.get("cache").unwrap();
    assert_eq!(cache.get("survived"), Some(&Json::Int(1)), "order-random");
    assert_eq!(
        cache.get("refreshed"),
        Some(&Json::Int(1)),
        "triangle-count"
    );
    assert_eq!(
        cache.get("invalidated"),
        Some(&Json::Int(1)),
        "order-degree"
    );

    // The refreshed count is served cached and agrees with an oracle
    // recount of the patched graph.
    let (patched, _) = gms_graph::patch_csr(&graph, &[], &removals).unwrap();
    let expected = gms_pattern::triangle_count_rank_merge(&patched) as i64;
    let tri = client.run("triangle-count", "g", &[]).unwrap();
    assert_eq!(tri.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(tri.get("patterns"), Some(&Json::Int(expected)));
    let rand = client.run("order-random", "g", &[]).unwrap();
    assert_eq!(rand.get("cached"), Some(&Json::Bool(true)));

    // An addition batch exercises the same delta path the other way.
    let (a, b) = (0..graph.num_vertices() as u32)
        .flat_map(|x| ((x + 1)..graph.num_vertices() as u32).map(move |y| (x, y)))
        .find(|&(x, y)| !graph.neighbors(x).any(|t| t == y))
        .unwrap();
    let added = client.add_edges("g", &[(a, b)]).unwrap();
    assert_ok(&added);
    assert_eq!(added.get("version"), Some(&Json::Int(2)));
    assert_eq!(added.get("added"), Some(&Json::Int(1)));
    let (patched2, _) = gms_graph::patch_csr(&patched, &[(a, b)], &[]).unwrap();
    let expected2 = gms_pattern::triangle_count_rank_merge(&patched2) as i64;
    let tri2 = client.run("triangle-count", "g", &[]).unwrap();
    assert_eq!(tri2.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(tri2.get("patterns"), Some(&Json::Int(expected2)));

    // Replaying the addition is a no-op (set semantics): same
    // fingerprint, no version bump.
    let replay = client.add_edges("g", &[(a, b)]).unwrap();
    assert_ok(&replay);
    assert_eq!(replay.get("version"), Some(&Json::Int(2)));
    assert_eq!(replay.get("fingerprint"), added.get("fingerprint"));

    // Stats carry lineage and the fleet-visible migration counters.
    let stats = client.stats().unwrap();
    let graphs = stats.get("graphs").and_then(Json::as_array).unwrap();
    assert_eq!(graphs[0].get("version"), Some(&Json::Int(2)));
    assert_eq!(graphs[0].get("base_fingerprint"), Some(&base_fp));
    let cstats = stats.get("cache").unwrap();
    assert!(cstats.get("migrated").and_then(Json::as_i64).unwrap() >= 4);
    assert!(cstats.get("refreshed").and_then(Json::as_i64).unwrap() >= 2);

    // Typed failure surface; a rejected batch leaves the graph alone.
    let bad = client.add_edges("g", &[(0, 1_000_000)]).unwrap();
    assert_eq!(error_code(&bad), "bad-mutation");
    let gone = client.add_edges("nope", &[(0, 1)]).unwrap();
    assert_eq!(error_code(&gone), "unknown-graph");
    let stats = client.stats().unwrap();
    let graphs = stats.get("graphs").and_then(Json::as_array).unwrap();
    assert_eq!(graphs[0].get("version"), Some(&Json::Int(2)));
    assert_eq!(graphs[0].get("fingerprint"), added.get("fingerprint"));

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn retried_load_after_mid_line_death_registers_once() {
    use std::io::Write;
    let (handle, mut client) = start(2, 16);
    let graph = gms_gen::planted_cliques(150, 0.03, 3, 6, 7).0;
    let full = Json::object([
        ("op", Json::from("load")),
        ("graph", Json::from("g")),
        ("format", Json::from("edge-list")),
        ("data", Json::from(edge_list(&graph))),
        ("compression", Json::from("gap")),
    ])
    .render();

    // Attempt 1 dies mid-body: half the request line, no newline,
    // connection dropped. Nothing may register.
    {
        let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(&full.as_bytes()[..full.len() / 2])
            .unwrap();
        stream.flush().unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(50));
    let health = client.health().unwrap();
    assert_eq!(
        health.get("graphs"),
        Some(&Json::Int(0)),
        "a dead half-line must not register a graph"
    );

    // Attempt 2 completes and warms the cache.
    let first = client.request(&Json::parse(&full).unwrap()).unwrap();
    assert_ok(&first);
    assert_eq!(first.get("replaced"), Some(&Json::Bool(false)));
    assert_eq!(first.get("compression").and_then(Json::as_str), Some("gap"));
    let warm = client.run("triangle-count", "g", &[]).unwrap();
    assert_eq!(warm.get("cached"), Some(&Json::Bool(false)));

    // The client never saw attempt 2's response (say), so it replays
    // the identical request: registration is idempotent by
    // fingerprint — the existing entry is kept, nothing invalidated,
    // the warmed cache intact.
    let retry = client.request(&Json::parse(&full).unwrap()).unwrap();
    assert_ok(&retry);
    assert_eq!(retry.get("replaced"), Some(&Json::Bool(true)));
    assert_eq!(retry.get("invalidated"), Some(&Json::Int(0)));
    assert_eq!(retry.get("version"), Some(&Json::Int(0)));
    assert_eq!(retry.get("fingerprint"), first.get("fingerprint"));
    let hit = client.run("triangle-count", "g", &[]).unwrap();
    assert_eq!(
        hit.get("cached"),
        Some(&Json::Bool(true)),
        "the retry must not cold the cache"
    );
    let health = client.health().unwrap();
    assert_eq!(health.get("graphs"), Some(&Json::Int(1)));

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn mutating_a_compressed_resident_rebuilds_transparently_over_sockets() {
    use gms_core::Graph;
    let (handle, mut client) = start(2, 16);
    let graph = gms_gen::planted_cliques(150, 0.03, 3, 6, 7).0;
    let loaded = client
        .request(&Json::object([
            ("op", Json::from("load")),
            ("graph", Json::from("g")),
            ("format", Json::from("edge-list")),
            ("data", Json::from(edge_list(&graph))),
            ("compression", Json::from("gap")),
        ]))
        .unwrap();
    assert_ok(&loaded);
    assert_eq!(
        loaded.get("compression").and_then(Json::as_str),
        Some("gap")
    );

    let u = (0..graph.num_vertices() as u32)
        .find(|&v| graph.degree(v) >= 1)
        .unwrap();
    let w = graph.neighbors(u).next().unwrap();
    let out = client.remove_edges("g", &[(u, w)]).unwrap();
    assert_ok(&out);
    assert_eq!(out.get("version"), Some(&Json::Int(1)));

    // The pinned policy: a compressed resident is transparently
    // re-encoded across a mutation — it stays `gap`, and kernels keep
    // serving through the decode hot path, rather than failing
    // not-materialized.
    let stats = client.stats().unwrap();
    let graphs = stats.get("graphs").and_then(Json::as_array).unwrap();
    assert_eq!(
        graphs[0].get("compression").and_then(Json::as_str),
        Some("gap")
    );
    assert_eq!(graphs[0].get("version"), Some(&Json::Int(1)));
    let (patched, _) = gms_graph::patch_csr(&graph, &[], &[(u, w)]).unwrap();
    let expected = gms_pattern::triangle_count_rank_merge(&patched) as i64;
    let tri = client.run("triangle-count", "g", &[]).unwrap();
    assert_ok(&tri);
    assert_eq!(tri.get("patterns"), Some(&Json::Int(expected)));

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn duplicate_requests_across_connections_share_one_execution() {
    let (handle, mut setup) = start(2, 16);
    let graph = gms_gen::planted_cliques(150, 0.03, 3, 6, 7).0;
    setup
        .load_inline("g", "edge-list", &edge_list(&graph))
        .unwrap();

    // The same request from several fresh connections: exactly one
    // kernel execution (misses == 1) however the requests interleave,
    // and at least one hit is served by a different worker session
    // than the one that computed it.
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let addr = handle.addr();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let out = client.run("k-clique", "g", &[("k", Json::Int(4))]).unwrap();
                assert_eq!(out.get("ok"), Some(&Json::Bool(true)));
                out.get("patterns").and_then(Json::as_i64).unwrap()
            })
        })
        .collect();
    let counts: Vec<i64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "all answers agree");

    let stats = setup.stats().unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(
        cache.get("misses"),
        Some(&Json::Int(1)),
        "{}",
        stats.render()
    );
    assert_eq!(cache.get("hits"), Some(&Json::Int(3)));

    setup.shutdown().unwrap();
    handle.join();
}

#[test]
fn queue_full_rejections_under_burst() {
    // One worker, queue bound 1: while the worker grinds a slow
    // request, at most one more fits; the rest of the burst must be
    // answered `queue-full` immediately.
    let (handle, mut setup) = start(1, 1);
    let graph = gms_gen::planted_cliques(700, 0.015, 4, 9, 3).0;
    setup
        .load_inline("g", "edge-list", &edge_list(&graph))
        .unwrap();

    let mut rejected = 0;
    for round in 0..5 {
        let burst = 8;
        let threads: Vec<_> = (0..burst)
            .map(|i| {
                let addr = handle.addr();
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    // Distinct params per request so nothing dedups.
                    let response = client
                        .run("bk", "g", &[("par-depth", Json::Int(i + 10 * round))])
                        .unwrap();
                    match response.get("ok") {
                        Some(&Json::Bool(true)) => false,
                        _ => {
                            assert_eq!(
                                response
                                    .get("error")
                                    .and_then(|e| e.get("code"))
                                    .and_then(Json::as_str),
                                Some("queue-full"),
                                "{}",
                                response.render()
                            );
                            true
                        }
                    }
                })
            })
            .collect();
        rejected += threads
            .into_iter()
            .map(|t| t.join().unwrap())
            .filter(|&was_rejected| was_rejected)
            .count();
        if rejected > 0 {
            break;
        }
    }
    assert!(rejected > 0, "a burst against a 1-deep queue must reject");

    let stats = setup.stats().unwrap();
    assert!(
        stats
            .get("server")
            .and_then(|s| s.get("rejected"))
            .and_then(Json::as_i64)
            .unwrap()
            >= rejected as i64
    );

    setup.shutdown().unwrap();
    handle.join();
}

#[test]
fn invalid_utf8_line_gets_a_typed_error_and_framing_survives() {
    use std::io::{BufRead, BufReader, Write};
    let (handle, mut client) = start(1, 4);

    // Raw socket: a line that is not valid UTF-8 (lone 0xFF bytes),
    // then a well-formed request on the same connection. The line
    // starts with `{` so the dual-protocol sniffer keeps it on the
    // NDJSON plane (a non-JSON first byte would route to the HTTP
    // gateway instead).
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(b"{\xff\xfe garbage \xff\n").unwrap();
    stream.write_all(b"{\"op\":\"health\",\"id\":9}\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let first = Json::parse(line.trim()).unwrap();
    assert_eq!(error_code(&first), "bad-json");
    line.clear();
    reader.read_line(&mut line).unwrap();
    let second = Json::parse(line.trim()).unwrap();
    assert_ok(&second);
    assert_eq!(second.get("id"), Some(&Json::Int(9)), "framing intact");

    let stats = client.stats().unwrap();
    assert!(
        stats
            .get("server")
            .and_then(|s| s.get("malformed"))
            .and_then(Json::as_i64)
            .unwrap()
            >= 1
    );
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn requests_after_shutdown_are_answered_shutting_down() {
    let (handle, mut client) = start(1, 4);
    client
        .load_inline("g", "edge-list", "0 1\n1 2\n2 0\n")
        .unwrap();
    handle.shutdown();
    // The existing connection stays readable until it closes; a
    // data-plane request is now refused with a typed error.
    let response = client.run("triangle-count", "g", &[]).unwrap();
    assert_eq!(error_code(&response), "shutting-down");
    handle.join();
}

// ------------------------------------------------------------------
// The /v1 HTTP gateway: same server, same port, sniffed protocol.
// ------------------------------------------------------------------

#[test]
fn http_gateway_round_trip() {
    use gms_serve::HttpClient;

    let (handle, mut ndjson) = start(2, 16);
    let http = HttpClient::new(handle.addr()).unwrap();

    // Control plane.
    let health = http.get("/v1/health").unwrap();
    assert_eq!(health.status, 200);
    let body = health.json().unwrap();
    assert_eq!(body.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(body.get("v"), Some(&Json::Int(1)));

    let kernels = http.get("/v1/kernels").unwrap();
    assert_eq!(kernels.status, 200);
    let list = kernels.json().unwrap();
    assert!(
        list.get("kernels").and_then(Json::as_array).unwrap().len() >= 15,
        "gateway proxies the full registry"
    );

    // Data plane: load, run, mutate — same state the NDJSON plane sees.
    let loaded = http
        .load_inline("web", "edge-list", "0 1\n1 2\n2 0\n2 3\n")
        .unwrap();
    assert_eq!(loaded.status, 200);
    assert_eq!(loaded.json().unwrap().get("vertices"), Some(&Json::Int(4)));

    let run = http.run("web", "triangle-count", &[]).unwrap();
    assert_eq!(run.status, 200);
    assert_eq!(run.json().unwrap().get("patterns"), Some(&Json::Int(1)));

    let mutated = http.mutate("web", &[(0, 3)], &[]).unwrap();
    assert_eq!(mutated.status, 200);
    assert_eq!(mutated.json().unwrap().get("added"), Some(&Json::Int(1)));

    // The NDJSON plane sees the HTTP-loaded, HTTP-mutated graph.
    let over_wire = ndjson.run("triangle-count", "web", &[]).unwrap();
    assert_ok(&over_wire);
    assert_eq!(over_wire.get("patterns"), Some(&Json::Int(2)));

    // Typed errors with mapped status codes.
    let missing = http.run("nope", "triangle-count", &[]).unwrap();
    assert_eq!(missing.status, 404);
    assert_eq!(missing.error().unwrap().code.as_str(), "unknown-graph");
    let unknown_path = http.get("/v1/unknown").unwrap();
    assert_eq!(unknown_path.status, 404);
    let wrong_method = http.get("/v1/graphs").unwrap();
    assert_eq!(wrong_method.status, 404, "GET on a POST-only endpoint");

    // The gateway shows up in stats, attributed per transport.
    let stats = http.get("/v1/stats").unwrap();
    assert_eq!(stats.status, 200);
    let server = stats.json().unwrap().get("server").unwrap().clone();
    assert!(server.get("http_requests").and_then(Json::as_i64).unwrap() >= 8);

    ndjson.shutdown().unwrap();
    handle.join();
}

/// Acceptance: a streamed clique listing whose payload exceeds the
/// page limit arrives in at least two data chunks, each a complete
/// JSON line, with the totals announced up front.
#[test]
fn streamed_clique_listing_arrives_in_pages() {
    use gms_serve::HttpClient;

    let (handle, mut ndjson) = start(2, 16);
    let (graph, _) = gms_gen::planted_cliques(150, 0.05, 6, 5, 13);
    let loaded = ndjson
        .load_inline("g", "edge-list", &edge_list(&graph))
        .unwrap();
    assert_ok(&loaded);

    let http = HttpClient::new(handle.addr()).unwrap();
    let streamed = http
        .run_streaming("g", "bk", &[("collect", Json::Bool(true))], 4)
        .unwrap();
    assert_eq!(streamed.status, 200);
    assert_eq!(
        streamed.header("transfer-encoding").map(str::to_lowercase),
        Some("chunked".to_string())
    );
    assert!(
        streamed.chunks >= 4,
        "meta + >=2 pages + trailer, got {} chunks",
        streamed.chunks
    );

    let lines = streamed.json_lines().unwrap();
    let meta = &lines[0];
    let payload = meta.get("payload").expect("meta keeps the summary");
    assert!(payload.get("items").is_none(), "items live in the pages");
    let total = payload.get("items_total").and_then(Json::as_i64).unwrap();
    assert!(total > 4, "enough cliques to overflow one page: {total}");

    let done = lines.last().unwrap();
    assert_eq!(done.get("done"), Some(&Json::Bool(true)));
    assert!(done.get("pages").and_then(Json::as_i64).unwrap() >= 2);
    let paged: i64 = lines[1..lines.len() - 1]
        .iter()
        .map(|l| l.get("items").and_then(Json::as_array).unwrap().len() as i64)
        .sum();
    assert_eq!(paged, total, "pages partition the full listing");

    ndjson.shutdown().unwrap();
    handle.join();
}

/// Abuse: a peer that sends a partial request head and stalls is
/// answered 408 within the request timeout instead of parking the
/// connection thread forever.
#[test]
fn slowloris_partial_request_times_out_with_408() {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    let handle = Server::start(ServeConfig {
        request_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .unwrap();

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // A request head that never finishes: no blank line, no body.
    stream
        .write_all(b"POST /v1/graphs HTTP/1.1\r\nHost: x\r\n")
        .unwrap();
    let started = Instant::now();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap(); // server answers, then closes
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 408"),
        "expected 408, got: {}",
        text.lines().next().unwrap_or("")
    );
    assert!(text.contains("\"timeout\""), "typed error code in body");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "guard fired promptly"
    );

    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    handle.join();
}

/// Abuse: an oversized body is refused from its Content-Length alone
/// (HTTP 413) — and the same cap guards the NDJSON plane — before
/// any body bytes are materialized.
#[test]
fn oversized_bodies_are_rejected_before_materialization() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let handle = Server::start(ServeConfig {
        max_body_bytes: 1024,
        ..ServeConfig::default()
    })
    .unwrap();

    // HTTP plane: declare 50 MB, send none of it. The 413 must come
    // back anyway — the server rejected on the header.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .write_all(b"POST /v1/graphs HTTP/1.1\r\nHost: x\r\nContent-Length: 52428800\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with("HTTP/1.1 413"),
        "expected 413, got: {}",
        text.lines().next().unwrap_or("")
    );
    assert!(text.contains("payload-too-large"));

    // NDJSON plane: a request line over the cap gets the same typed
    // error and the connection survives for well-behaved requests.
    let mut client = Client::connect(handle.addr()).unwrap();
    let big = "0 1\n".repeat(600); // 2400 bytes > 1024
    let refused = client.load_inline("g", "edge-list", &big).unwrap();
    assert_eq!(error_code(&refused), "payload-too-large");
    assert_ok(&client.health().unwrap());

    client.shutdown().unwrap();
    handle.join();
}

/// Abuse: a newline-free NDJSON stream is cut off at the body cap
/// *while* it arrives — the server answers `payload-too-large`
/// before the flood completes instead of buffering it whole, and the
/// connection resyncs on the next newline.
#[test]
fn newline_free_ndjson_flood_is_bounded_and_resyncs() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let handle = Server::start(ServeConfig {
        max_body_bytes: 1024,
        ..ServeConfig::default()
    })
    .unwrap();

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    // Starts with '{' so the sniffer picks the NDJSON plane, then
    // streams far past the cap without ever sending a newline.
    let flood = vec![b'{'; 64 * 1024];
    stream.write_all(&flood).unwrap();
    stream.flush().unwrap();
    // The error must come back while the line is still unterminated.
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(
        reply.contains("payload-too-large"),
        "expected payload-too-large mid-flood, got: {reply}"
    );
    // Terminate the flooded line; the connection is resynced and
    // serves well-formed requests again.
    stream.write_all(b"\n{\"op\":\"health\"}\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(
        reply.contains("\"serving\""),
        "connection should resync after the flood, got: {reply}"
    );

    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    handle.join();
}

/// Two pipelined requests written back-to-back in one packet both
/// get answers: bytes read past the first body are carried into the
/// next request's parse, not dropped.
#[test]
fn pipelined_http_requests_are_both_answered() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let handle = Server::start(ServeConfig::default()).unwrap();

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .write_all(
            b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n\
              GET /v1/health HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap(); // close arrives after both
    let text = String::from_utf8_lossy(&raw);
    let answers = text.matches("HTTP/1.1 200").count();
    assert_eq!(answers, 2, "both pipelined requests answered: {text}");

    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().unwrap();
    handle.join();
}

/// Acceptance: an over-deadline Bron-Kerbosch run on a large graph
/// answers a typed `deadline-exceeded` in under 2x the deadline, and
/// the worker it ran on is freed for the next request.
#[test]
fn deadline_expiry_mid_kernel_returns_typed_error_and_frees_the_worker() {
    use gms_serve::{ClientBuilder, ErrorCode};
    use std::time::{Duration, Instant};

    let (handle, mut loader) = start(1, 8);
    // Dense enough that maximal-clique listing takes far longer than
    // the deadline; cancellation must cut it short from inside the
    // kernel's hot loop.
    let graph = gms_gen::gnp(1200, 0.08, 7);
    let loaded = loader
        .load_inline("big", "edge-list", &edge_list(&graph))
        .unwrap();
    assert_ok(&loaded);

    let deadline = Duration::from_millis(500);
    let mut client = ClientBuilder::new()
        .deadline_ms(deadline.as_millis() as u64)
        .connect(handle.addr())
        .unwrap();
    let started = Instant::now();
    let error = client.run_kernel("bk", "big", &[]).unwrap_err();
    let elapsed = started.elapsed();
    assert_eq!(error.code, ErrorCode::DeadlineExceeded);
    assert!(error.retryable());
    assert!(
        elapsed < 2 * deadline,
        "deadline-exceeded took {elapsed:?}, acceptance bound is {:?}",
        2 * deadline
    );

    // The single worker is free again: a cheap run completes.
    let next = loader.run("triangle-count", "big", &[]).unwrap();
    assert_ok(&next);

    loader.shutdown().unwrap();
    handle.join();
}

/// Abuse: a client that exhausts its token bucket is answered 429
/// (`rate-limited`) while a second client's identical request
/// proceeds — and the shed is attributed to the right client in
/// `stats`.
#[test]
fn rate_limited_client_gets_429_while_second_client_proceeds() {
    use gms_serve::{ClientBuilder, ErrorCode, RateLimit};

    let handle = Server::start(ServeConfig {
        rate_limit: Some(RateLimit {
            rate_per_sec: 0.5,
            burst: 1.0,
        }),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut admin = Client::connect(handle.addr()).unwrap();
    let loaded = admin
        .load_inline("g", "edge-list", "0 1\n1 2\n2 0\n")
        .unwrap();
    assert_ok(&loaded);

    let mut alice = ClientBuilder::new()
        .client_name("alice")
        .connect(handle.addr())
        .unwrap();
    alice.run_kernel("triangle-count", "g", &[]).unwrap();
    let refused = alice.run_kernel("triangle-count", "g", &[]).unwrap_err();
    assert_eq!(refused.code, ErrorCode::RateLimited);
    assert!(refused.retryable());

    // A different identity is untouched by alice's bucket.
    let mut bob = ClientBuilder::new()
        .client_name("bob")
        .connect(handle.addr())
        .unwrap();
    bob.run_kernel("triangle-count", "g", &[]).unwrap();

    // The same identity over HTTP shares the same drained bucket.
    let http = ClientBuilder::new()
        .client_name("alice")
        .connect_http(handle.addr())
        .unwrap();
    let over_http = http.run("g", "triangle-count", &[]).unwrap();
    assert_eq!(over_http.status, 429);
    assert_eq!(over_http.error().unwrap().code.as_str(), "rate-limited");

    // Attributed in stats: alice's shed is hers, not bob's.
    let stats = admin.stats().unwrap();
    let clients = stats.get("clients").and_then(Json::as_array).unwrap();
    let by_name = |name: &str| {
        clients
            .iter()
            .find(|c| c.get("client").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("client {name} in stats"))
    };
    assert!(
        by_name("alice")
            .get("rate_limited")
            .and_then(Json::as_i64)
            .unwrap()
            >= 2
    );
    assert_eq!(by_name("bob").get("rate_limited"), Some(&Json::Int(0)));

    admin.shutdown().unwrap();
    handle.join();
}
