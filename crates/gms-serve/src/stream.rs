//! Chunked NDJSON streaming for large kernel payloads.
//!
//! A `POST /v1/graphs/{name}/run?stream=1&limit=N` response does not
//! buffer the whole payload into one body. Instead the gateway
//! answers `Transfer-Encoding: chunked` with `application/x-ndjson`
//! content, where every chunk is one complete JSON line, flushed as
//! soon as it is written:
//!
//! ```text
//! {"v":1,"ok":true,...,"payload":{...,"items_total":531}}   ← meta
//! {"v":1,"page":0,"offset":0,"items":[...]}                 ← ≤ N items
//! {"v":1,"page":1,"offset":N,"items":[...]}
//! ...
//! {"v":1,"done":true,"pages":P,"items_total":531}           ← trailer
//! ```
//!
//! The meta line is the ordinary full-payload response with
//! `payload.items` *removed* (its `items_total` survives, so a client
//! knows up front how much is coming). A payload larger than the page
//! limit therefore always arrives in at least two data chunks, and a
//! client can stop reading mid-stream having still seen well-formed
//! JSON on every line it did read.

use crate::json::Json;
use crate::protocol::PROTOCOL_VERSION;
use std::io::{self, Write};

/// Items per streamed page when the request does not say
/// (`?limit=N`).
pub(crate) const DEFAULT_PAGE_LIMIT: usize = 256;

/// Splits a full-payload response into the meta line (summary
/// retained, `payload.items` removed) and the item array to page
/// over. Responses without a payload object stream zero pages.
fn split_response(response: &Json) -> (Json, Vec<Json>) {
    let mut items: Vec<Json> = Vec::new();
    let members: Vec<(String, Json)> = response
        .as_object()
        .map(|fields| {
            fields
                .iter()
                .map(|(key, value)| {
                    if key != "payload" {
                        return (key.clone(), value.clone());
                    }
                    let kept: Vec<(String, Json)> = value
                        .as_object()
                        .map(|inner| {
                            inner
                                .iter()
                                .filter(|(k, v)| {
                                    if k == "items" {
                                        if let Json::Array(found) = v {
                                            items = found.clone();
                                        }
                                        false
                                    } else {
                                        true
                                    }
                                })
                                .map(|(k, v)| (k.clone(), v.clone()))
                                .collect()
                        })
                        .unwrap_or_default();
                    (key.clone(), Json::Object(kept))
                })
                .collect()
        })
        .unwrap_or_default();
    (Json::Object(members), items)
}

/// Writes one HTTP chunk (`<hex length>\r\n<data>\r\n`) and flushes
/// it, so every page reaches the peer as its own transfer unit.
fn write_chunk<W: Write>(out: &mut W, data: &[u8]) -> io::Result<()> {
    write!(out, "{:x}\r\n", data.len())?;
    out.write_all(data)?;
    out.write_all(b"\r\n")?;
    out.flush()
}

fn ndjson_line(value: &Json) -> Vec<u8> {
    let mut line = value.render().into_bytes();
    line.push(b'\n');
    line
}

/// Streams a full-payload `run` response as chunked NDJSON: status
/// line and headers, the meta line, `ceil(items/limit)` page lines,
/// the `done` trailer, and the terminating zero chunk.
pub(crate) fn stream_outcome<W: Write>(
    out: &mut W,
    response: &Json,
    limit: usize,
    keep_alive: bool,
) -> io::Result<()> {
    let limit = limit.max(1);
    let (meta, items) = split_response(response);
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" },
    );
    out.write_all(head.as_bytes())?;
    write_chunk(out, &ndjson_line(&meta))?;
    let mut pages = 0usize;
    for page in items.chunks(limit) {
        let line = Json::object([
            ("v", Json::Int(PROTOCOL_VERSION)),
            ("page", Json::from(pages)),
            ("offset", Json::from(pages * limit)),
            ("items", Json::Array(page.to_vec())),
        ]);
        write_chunk(out, &ndjson_line(&line))?;
        pages += 1;
    }
    let done = Json::object([
        ("v", Json::Int(PROTOCOL_VERSION)),
        ("done", Json::Bool(true)),
        ("pages", Json::from(pages)),
        ("items_total", Json::from(items.len())),
    ]);
    write_chunk(out, &ndjson_line(&done))?;
    out.write_all(b"0\r\n\r\n")?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_response() -> Json {
        Json::object([
            ("v", Json::Int(1)),
            ("ok", Json::Bool(true)),
            (
                "payload",
                Json::object([
                    ("type", Json::from("vertex-groups")),
                    ("groups", Json::from(5_usize)),
                    ("items_total", Json::from(5_usize)),
                    (
                        "items",
                        Json::Array(
                            (0..5)
                                .map(|i| Json::Array(vec![Json::Int(i), Json::Int(i + 1)]))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// Parses a chunked body back into its chunks (sizes validated).
    fn decode_chunks(raw: &[u8]) -> Vec<String> {
        let text = std::str::from_utf8(raw).unwrap();
        let body = text.split_once("\r\n\r\n").unwrap().1;
        let mut rest = body;
        let mut chunks = Vec::new();
        loop {
            let (size_line, tail) = rest.split_once("\r\n").unwrap();
            let size = usize::from_str_radix(size_line, 16).unwrap();
            if size == 0 {
                break;
            }
            chunks.push(tail[..size].to_string());
            rest = tail[size..].strip_prefix("\r\n").unwrap();
        }
        chunks
    }

    #[test]
    fn meta_keeps_totals_but_drops_items() {
        let (meta, items) = split_response(&full_response());
        assert_eq!(items.len(), 5);
        let payload = meta.get("payload").unwrap();
        assert_eq!(payload.get("items_total"), Some(&Json::Int(5)));
        assert!(payload.get("items").is_none(), "items live in the pages");
        assert_eq!(meta.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn items_beyond_the_limit_arrive_in_multiple_chunks() {
        let mut out: Vec<u8> = Vec::new();
        stream_outcome(&mut out, &full_response(), 2, true).unwrap();
        let head = std::str::from_utf8(&out).unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains("Transfer-Encoding: chunked"));
        let chunks = decode_chunks(&out);
        // meta + ceil(5/2)=3 pages + done = 5 chunks ≥ 2 data chunks.
        assert_eq!(chunks.len(), 5);
        let page0 = Json::parse(chunks[1].trim()).unwrap();
        assert_eq!(page0.get("offset"), Some(&Json::Int(0)));
        assert_eq!(
            page0.get("items").and_then(Json::as_array).unwrap().len(),
            2
        );
        let last = Json::parse(chunks[4].trim()).unwrap();
        assert_eq!(last.get("done"), Some(&Json::Bool(true)));
        assert_eq!(last.get("pages"), Some(&Json::Int(3)));
        assert_eq!(last.get("items_total"), Some(&Json::Int(5)));
    }

    #[test]
    fn scalar_responses_stream_zero_pages() {
        let response = Json::object([
            ("v", Json::Int(1)),
            ("ok", Json::Bool(true)),
            (
                "payload",
                Json::object([
                    ("type", Json::from("scalar")),
                    ("value", Json::from(42.0)),
                    ("items_total", Json::from(0_usize)),
                    ("items", Json::Array(Vec::new())),
                ]),
            ),
        ]);
        let mut out: Vec<u8> = Vec::new();
        stream_outcome(&mut out, &response, 8, false).unwrap();
        let chunks = decode_chunks(&out);
        assert_eq!(chunks.len(), 2, "meta + done only");
        assert!(std::str::from_utf8(&out)
            .unwrap()
            .contains("Connection: close"));
    }
}
