//! A minimal JSON value, parser, and writer.
//!
//! The wire layer needs real JSON but the build environment has no
//! crates.io access and the in-tree `serde` shim is marker-only, so
//! `gms-serve` carries its own ~300-line implementation: a [`Json`]
//! tree (integers and floats kept apart, object key order preserved),
//! a recursive-descent parser with a nesting-depth guard, and a
//! writer whose output round-trips through the parser.
//!
//! Intentional deviations from a full JSON library, all irrelevant to
//! the newline-delimited protocol: duplicate object keys are kept
//! (lookup returns the first), and non-finite floats render as
//! `null` (JSON has no spelling for them).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without `.`/`e` that fits an `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<'a, I: IntoIterator<Item = (&'a str, Json)>>(fields: I) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes the value on one line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) if x.is_finite() => {
                let _ = write!(out, "{x:?}");
            }
            // JSON cannot spell NaN/inf; null is the least-wrong form.
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses exactly one JSON value; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        i64::try_from(v)
            .map(Json::Int)
            .unwrap_or(Json::Float(v as f64))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting deeper than this is rejected: the protocol never needs it
/// and a recursive parser must not let hostile input exhaust the
/// stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Array(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Object(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}' in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free ASCII/UTF-8 run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so the run is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xd800..0xdc00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if !(self.eat(b'\\') && self.eat(b'u')) {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))?
                };
                out.push(c);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(self.err("truncated \\u escape"));
        };
        // Check digit by digit: `from_str_radix` alone would also
        // accept a leading sign, which JSON does not.
        let mut hex = 0u32;
        for &b in &self.bytes[self.pos..end] {
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            hex = hex * 16 + digit;
        }
        self.pos = end;
        Ok(hex)
    }

    /// Consumes a run of ASCII digits; returns how many.
    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        // JSON integer part: a single 0, or a nonzero digit followed
        // by more digits — no leading zeros, at least one digit.
        let leading_zero = self.peek() == Some(b'0');
        let int_digits = self.digits();
        if int_digits == 0 || (leading_zero && int_digits > 1) {
            return Err(self.err("invalid number"));
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            if self.digits() == 0 {
                return Err(self.err("digits required after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("digits required in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            // Magnitude beyond i64: fall through to f64.
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> Json {
        let parsed = Json::parse(text).unwrap();
        let rendered = parsed.render();
        assert_eq!(
            Json::parse(&rendered).unwrap(),
            parsed,
            "render must roundtrip"
        );
        parsed
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(roundtrip("null"), Json::Null);
        assert_eq!(roundtrip("true"), Json::Bool(true));
        assert_eq!(roundtrip("-42"), Json::Int(-42));
        assert_eq!(roundtrip("0.5"), Json::Float(0.5));
        assert_eq!(roundtrip("1e3"), Json::Float(1000.0));
        assert_eq!(roundtrip("\"hi\""), Json::Str("hi".into()));
        // i64 overflow degrades to float instead of erroring.
        assert!(matches!(roundtrip("99999999999999999999"), Json::Float(_)));
    }

    #[test]
    fn parses_structures_and_preserves_key_order() {
        let v = roundtrip(r#"{"b":[1,2.5,{"x":null}],"a":"y"}"#);
        assert_eq!(v.get("a").and_then(Json::as_str), Some("y"));
        let items = v.get("b").and_then(Json::as_array).unwrap();
        assert_eq!(items[0].as_i64(), Some(1));
        assert_eq!(v.as_object().unwrap()[0].0, "b");
        assert_eq!(roundtrip("[]"), Json::Array(vec![]));
        assert_eq!(roundtrip("{}"), Json::Object(vec![]));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = roundtrip(r#""line\nquote\"tab\tslash\\u\u0041\u00e9\ud83d\ude00""#);
        assert_eq!(v.as_str(), Some("line\nquote\"tab\tslash\\uAé😀"));
        // Rendering a control character escapes it.
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            // Strict number grammar: no leading zeros, digits
            // required around '.', digits required in exponents, no
            // bare minus.
            "01",
            "-01",
            "1.",
            ".5",
            "1e",
            "1e+",
            "-",
            // A sign is not a hex digit inside \u escapes.
            "\"\\u+041\"",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\ud800\"",
            "{} trailing",
            "nan",
            "'single'",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Depth bomb is rejected, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn object_builder_and_from_impls() {
        let v = Json::object([
            ("ok", Json::from(true)),
            ("n", Json::from(3usize)),
            ("name", Json::from("x")),
        ]);
        assert_eq!(v.render(), r#"{"ok":true,"n":3,"name":"x"}"#);
        assert_eq!(Json::from(u64::MAX), Json::Float(u64::MAX as f64));
    }
}
