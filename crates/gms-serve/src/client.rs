//! A small synchronous client for the newline-delimited protocol:
//! one request in flight per connection, used by the `bench_serve`
//! load generator, the integration tests, and the facade quick
//! start.

use crate::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One protocol connection. Each call sends a line and blocks for
/// the one-line response; drop the client to close the connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    /// Sends raw bytes as one line and reads one response line. The
    /// raw entry point exists so tests and load generators can send
    /// deliberately malformed requests.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<Json> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(response.trim()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparsable response: {e}"),
            )
        })
    }

    /// Sends a request value and reads the response.
    pub fn request(&mut self, request: &Json) -> std::io::Result<Json> {
        self.request_raw(&request.render())
    }

    /// `{"op":"health"}`.
    pub fn health(&mut self) -> std::io::Result<Json> {
        self.request(&Json::object([("op", Json::from("health"))]))
    }

    /// `{"op":"stats"}`.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request(&Json::object([("op", Json::from("stats"))]))
    }

    /// `{"op":"kernels"}`.
    pub fn kernels(&mut self) -> std::io::Result<Json> {
        self.request(&Json::object([("op", Json::from("kernels"))]))
    }

    /// Loads a graph from text sent inline with the request.
    pub fn load_inline(&mut self, name: &str, format: &str, data: &str) -> std::io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::from("load")),
            ("graph", Json::from(name)),
            ("format", Json::from(format)),
            ("data", Json::from(data)),
        ]))
    }

    /// Loads a graph from a path on the server's filesystem.
    pub fn load_path(&mut self, name: &str, format: &str, path: &str) -> std::io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::from("load")),
            ("graph", Json::from(name)),
            ("format", Json::from(format)),
            ("path", Json::from(path)),
        ]))
    }

    /// Runs a kernel on a loaded graph with parameter overrides.
    pub fn run(
        &mut self,
        kernel: &str,
        graph: &str,
        params: &[(&str, Json)],
    ) -> std::io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::from("run")),
            ("kernel", Json::from(kernel)),
            ("graph", Json::from(graph)),
            (
                "params",
                Json::Object(
                    params
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                ),
            ),
        ]))
    }

    /// Requests a graceful shutdown and returns the acknowledgment.
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.request(&Json::object([("op", Json::from("shutdown"))]))
    }
}
