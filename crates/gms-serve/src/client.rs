//! A small synchronous client for the newline-delimited protocol:
//! one request in flight per connection, used by the `bench_serve`
//! load generator, the integration tests, the facade quick start,
//! and — pooled — by the `gms-router` front end.
//!
//! Built for reuse inside connection pools: the client remembers its
//! resolved address, carries configurable connect/read timeouts (a
//! dead server answers with a timeout error instead of hanging the
//! calling thread forever), and [`Client::request_idempotent`]
//! transparently reconnects and retries **once** when a pooled
//! connection turns out to be broken — the stale-connection case
//! every pool hits after a server restart.

use crate::json::Json;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connection-behavior knobs, all optional: `None` means block
/// indefinitely (the pre-pooling behavior).
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientConfig {
    /// Give up dialing after this long.
    pub connect_timeout: Option<Duration>,
    /// Give up waiting for a response line after this long. The
    /// failed read surfaces as a `WouldBlock`/`TimedOut` I/O error
    /// and poisons the connection (the next use reconnects).
    pub read_timeout: Option<Duration>,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One protocol connection. Each call sends a line and blocks for
/// the one-line response; drop the client to close the connection.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Conn>,
}

/// Whether an I/O failure means the connection itself is unusable
/// (as opposed to a semantic failure the caller must see).
fn is_connection_death(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionRefused
            | ErrorKind::UnexpectedEof
            | ErrorKind::WouldBlock
            | ErrorKind::TimedOut
    )
}

impl Client {
    /// Connects to a running server with default (blocking) timeouts.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit connect/read timeouts.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let mut client = Self {
            addr,
            config,
            conn: None,
        };
        client.reconnect()?;
        Ok(client)
    }

    /// The resolved peer address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the read timeout for subsequent requests.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.config.read_timeout = timeout;
        if let Some(conn) = &self.conn {
            conn.writer.set_read_timeout(timeout)?;
        }
        Ok(())
    }

    /// Drops any existing connection and dials a fresh one.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        self.conn = None;
        let stream = match self.config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&self.addr, timeout)?,
            None => TcpStream::connect(self.addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.config.read_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some(Conn {
            reader,
            writer: stream,
        });
        Ok(())
    }

    fn round_trip(&mut self, line: &str) -> std::io::Result<Json> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let conn = self.conn.as_mut().expect("reconnect() populated conn");
        let result = (|| {
            conn.writer.write_all(line.as_bytes())?;
            conn.writer.write_all(b"\n")?;
            conn.writer.flush()?;
            let mut response = String::new();
            let n = conn.reader.read_line(&mut response)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            Ok(response)
        })();
        match result {
            Ok(response) => Json::parse(response.trim()).map_err(|e| {
                std::io::Error::new(ErrorKind::InvalidData, format!("unparsable response: {e}"))
            }),
            Err(e) => {
                // A half-written request or half-read response leaves
                // the stream desynchronized: poison the connection so
                // the next use dials fresh.
                if is_connection_death(e.kind()) {
                    self.conn = None;
                }
                Err(e)
            }
        }
    }

    /// Sends raw bytes as one line and reads one response line. The
    /// raw entry point exists so tests and load generators can send
    /// deliberately malformed requests.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<Json> {
        self.round_trip(line)
    }

    /// Sends a request value and reads the response.
    pub fn request(&mut self, request: &Json) -> std::io::Result<Json> {
        self.request_raw(&request.render())
    }

    /// Like [`Client::request`], for requests that are safe to send
    /// twice (`health`, `stats`, `run` — the result cache makes runs
    /// repeatable): when the connection turns out to be dead (broken
    /// pipe, reset, EOF on a pooled connection the server closed, or
    /// a read timeout), reconnects and retries **once**. A second
    /// failure propagates — the server really is unreachable.
    pub fn request_idempotent(&mut self, request: &Json) -> std::io::Result<Json> {
        let line = request.render();
        match self.round_trip(&line) {
            Err(e) if is_connection_death(e.kind()) => {
                self.reconnect()?;
                self.round_trip(&line)
            }
            other => other,
        }
    }

    /// `{"op":"health"}`.
    pub fn health(&mut self) -> std::io::Result<Json> {
        self.request(&Json::object([("op", Json::from("health"))]))
    }

    /// `{"op":"stats"}`.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request(&Json::object([("op", Json::from("stats"))]))
    }

    /// `{"op":"kernels"}`.
    pub fn kernels(&mut self) -> std::io::Result<Json> {
        self.request(&Json::object([("op", Json::from("kernels"))]))
    }

    /// Loads a graph from text sent inline with the request.
    pub fn load_inline(&mut self, name: &str, format: &str, data: &str) -> std::io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::from("load")),
            ("graph", Json::from(name)),
            ("format", Json::from(format)),
            ("data", Json::from(data)),
        ]))
    }

    /// Loads a graph from a path on the server's filesystem.
    pub fn load_path(&mut self, name: &str, format: &str, path: &str) -> std::io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::from("load")),
            ("graph", Json::from(name)),
            ("format", Json::from(format)),
            ("path", Json::from(path)),
        ]))
    }

    /// Adds a batch of undirected edges to a loaded graph. Set
    /// semantics make the batch idempotent (already-present edges are
    /// no-ops), so the request rides the reconnect-and-retry path —
    /// a lost response is safe to replay.
    pub fn add_edges(&mut self, graph: &str, edges: &[(u32, u32)]) -> std::io::Result<Json> {
        self.mutate_edges("add_edges", graph, edges)
    }

    /// Removes a batch of undirected edges from a loaded graph. Set
    /// semantics make the batch idempotent (already-absent edges are
    /// no-ops), so the request rides the reconnect-and-retry path.
    pub fn remove_edges(&mut self, graph: &str, edges: &[(u32, u32)]) -> std::io::Result<Json> {
        self.mutate_edges("remove_edges", graph, edges)
    }

    fn mutate_edges(
        &mut self,
        op: &str,
        graph: &str,
        edges: &[(u32, u32)],
    ) -> std::io::Result<Json> {
        let edges: Vec<Json> = edges
            .iter()
            .map(|&(u, v)| Json::Array(vec![Json::from(u as i64), Json::from(v as i64)]))
            .collect();
        self.request_idempotent(&Json::object([
            ("op", Json::from(op)),
            ("graph", Json::from(graph)),
            ("edges", Json::Array(edges)),
        ]))
    }

    /// Runs a kernel on a loaded graph with parameter overrides.
    pub fn run(
        &mut self,
        kernel: &str,
        graph: &str,
        params: &[(&str, Json)],
    ) -> std::io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::from("run")),
            ("kernel", Json::from(kernel)),
            ("graph", Json::from(graph)),
            (
                "params",
                Json::Object(
                    params
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                ),
            ),
        ]))
    }

    /// Requests a graceful shutdown and returns the acknowledgment.
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.request(&Json::object([("op", Json::from("shutdown"))]))
    }
}
