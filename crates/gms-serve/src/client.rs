//! Clients for both faces of the server: the newline-delimited JSON
//! protocol and the `/v1` HTTP gateway.
//!
//! Three layers, lowest first:
//!
//! - [`Client`] — one NDJSON connection, one request in flight.
//!   The raw `io::Result<Json>` methods (`request`, `health`, `run`,
//!   ...) predate v1 and stay for the router's pool and for tests
//!   that send deliberately malformed lines.
//! - The **typed v1 surface** on the same [`Client`]
//!   ([`Client::check_health`], [`Client::run_kernel`], ...): every
//!   method stamps the v1 envelope (`"v":1` plus the builder's
//!   default deadline / client identity / weight) and returns
//!   `Result<T, ApiError>` — transport failures and server-side
//!   failures arrive as the same typed error.
//! - [`HttpClient`] — a minimal HTTP/1.1 client for the gateway,
//!   chunk-aware so tests and the benchmark can observe how many
//!   chunks a streamed response actually arrived in.
//!
//! Construction goes through [`ClientBuilder`]:
//!
//! ```no_run
//! use gms_serve::ClientBuilder;
//! use std::time::Duration;
//!
//! let mut client = ClientBuilder::new()
//!     .connect_timeout(Duration::from_secs(1))
//!     .read_timeout(Duration::from_secs(10))
//!     .deadline_ms(500)
//!     .client_name("alice")
//!     .weight(4)
//!     .connect("127.0.0.1:7001")
//!     .unwrap();
//! let health = client.check_health().unwrap();
//! assert_eq!(health.status, "serving");
//! ```
//!
//! Built for reuse inside connection pools: the client remembers its
//! resolved address, carries configurable connect/read timeouts (a
//! dead server answers with a timeout error instead of hanging the
//! calling thread forever), and [`Client::request_idempotent`]
//! transparently reconnects and retries **once** when a pooled
//! connection turns out to be broken — the stale-connection case
//! every pool hits after a server restart.

use crate::json::Json;
use crate::protocol::{ApiError, ErrorCode, PROTOCOL_VERSION};
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connection-behavior knobs, all optional: `None` means block
/// indefinitely (the pre-pooling behavior).
///
/// The positional-config era of this struct is over — new code
/// should go through [`ClientBuilder`] — but it remains the pooled
/// router's configuration unit.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientConfig {
    /// Give up dialing after this long.
    pub connect_timeout: Option<Duration>,
    /// Give up waiting for a response line after this long. The
    /// failed read surfaces as a `WouldBlock`/`TimedOut` I/O error
    /// and poisons the connection (the next use reconnects).
    pub read_timeout: Option<Duration>,
}

/// Builder for [`Client`] and [`HttpClient`]: timeouts plus the v1
/// request defaults (deadline, client identity, fairness weight)
/// stamped onto every typed request.
#[derive(Clone, Debug, Default)]
pub struct ClientBuilder {
    config: ClientConfig,
    deadline_ms: Option<u64>,
    client_name: Option<String>,
    weight: u32,
}

impl ClientBuilder {
    /// A builder with no timeouts, no default deadline, anonymous
    /// identity, and weight 1.
    pub fn new() -> Self {
        Self {
            weight: 1,
            ..Self::default()
        }
    }

    /// Give up dialing after this long.
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.config.connect_timeout = Some(timeout);
        self
    }

    /// Give up waiting for a response after this long.
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.config.read_timeout = Some(timeout);
        self
    }

    /// Default relative deadline stamped on every typed request; the
    /// server propagates it into kernel cancellation points.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// The fairness / rate-limit identity sent with every typed
    /// request.
    pub fn client_name(mut self, name: impl Into<String>) -> Self {
        self.client_name = Some(name.into());
        self
    }

    /// Weighted-fair-queuing weight (1..=1024) sent with every typed
    /// request.
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Dials an NDJSON [`Client`].
    pub fn connect<A: ToSocketAddrs>(self, addr: A) -> std::io::Result<Client> {
        let mut client = Client::connect_with(addr, self.config)?;
        client.deadline_ms = self.deadline_ms;
        client.client_name = self.client_name;
        client.weight = self.weight;
        Ok(client)
    }

    /// Builds an [`HttpClient`] for the `/v1` gateway at `addr`
    /// (connections are per-request, so this only resolves the
    /// address).
    pub fn connect_http<A: ToSocketAddrs>(self, addr: A) -> std::io::Result<HttpClient> {
        let addr = resolve(addr)?;
        Ok(HttpClient {
            addr,
            config: self.config,
            deadline_ms: self.deadline_ms,
            client_name: self.client_name,
            weight: self.weight,
        })
    }
}

fn resolve<A: ToSocketAddrs>(addr: A) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "address resolved to nothing"))
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One protocol connection. Each call sends a line and blocks for
/// the one-line response; drop the client to close the connection.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    conn: Option<Conn>,
    deadline_ms: Option<u64>,
    client_name: Option<String>,
    weight: u32,
}

/// Whether an I/O failure means the connection itself is unusable
/// (as opposed to a semantic failure the caller must see).
fn is_connection_death(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionRefused
            | ErrorKind::UnexpectedEof
            | ErrorKind::WouldBlock
            | ErrorKind::TimedOut
    )
}

impl Client {
    /// Connects to a running server with default (blocking) timeouts.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit connect/read timeouts.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> std::io::Result<Self> {
        let addr = resolve(addr)?;
        let mut client = Self {
            addr,
            config,
            conn: None,
            deadline_ms: None,
            client_name: None,
            weight: 1,
        };
        client.reconnect()?;
        Ok(client)
    }

    /// The resolved peer address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the read timeout for subsequent requests.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.config.read_timeout = timeout;
        if let Some(conn) = &self.conn {
            conn.writer.set_read_timeout(timeout)?;
        }
        Ok(())
    }

    /// Drops any existing connection and dials a fresh one.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        self.conn = None;
        let stream = match self.config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&self.addr, timeout)?,
            None => TcpStream::connect(self.addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.config.read_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some(Conn {
            reader,
            writer: stream,
        });
        Ok(())
    }

    fn round_trip(&mut self, line: &str) -> std::io::Result<Json> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let conn = self.conn.as_mut().expect("reconnect() populated conn");
        let result = (|| {
            conn.writer.write_all(line.as_bytes())?;
            conn.writer.write_all(b"\n")?;
            conn.writer.flush()?;
            let mut response = String::new();
            let n = conn.reader.read_line(&mut response)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            Ok(response)
        })();
        match result {
            Ok(response) => Json::parse(response.trim()).map_err(|e| {
                std::io::Error::new(ErrorKind::InvalidData, format!("unparsable response: {e}"))
            }),
            Err(e) => {
                // A half-written request or half-read response leaves
                // the stream desynchronized: poison the connection so
                // the next use dials fresh.
                if is_connection_death(e.kind()) {
                    self.conn = None;
                }
                Err(e)
            }
        }
    }

    /// Sends raw bytes as one line and reads one response line. The
    /// raw entry point exists so tests and load generators can send
    /// deliberately malformed requests.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<Json> {
        self.round_trip(line)
    }

    /// Sends a request value and reads the response.
    pub fn request(&mut self, request: &Json) -> std::io::Result<Json> {
        self.request_raw(&request.render())
    }

    /// Like [`Client::request`], for requests that are safe to send
    /// twice (`health`, `stats`, `run` — the result cache makes runs
    /// repeatable): when the connection turns out to be dead (broken
    /// pipe, reset, EOF on a pooled connection the server closed, or
    /// a read timeout), reconnects and retries **once**. A second
    /// failure propagates — the server really is unreachable.
    pub fn request_idempotent(&mut self, request: &Json) -> std::io::Result<Json> {
        let line = request.render();
        match self.round_trip(&line) {
            Err(e) if is_connection_death(e.kind()) => {
                self.reconnect()?;
                self.round_trip(&line)
            }
            other => other,
        }
    }

    /// Wraps op members in the v1 envelope: protocol version first,
    /// then the builder's default deadline / identity / weight.
    fn envelope(&self, members: Vec<(&'static str, Json)>) -> Json {
        let mut fields: Vec<(&'static str, Json)> = Vec::with_capacity(members.len() + 4);
        fields.push(("v", Json::Int(PROTOCOL_VERSION)));
        fields.extend(members);
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms", Json::from(ms)));
        }
        if let Some(name) = &self.client_name {
            fields.push(("client", Json::from(name.clone())));
        }
        if self.weight != 1 {
            fields.push(("weight", Json::from(u64::from(self.weight))));
        }
        Json::object(fields)
    }

    /// One typed round trip: transport failures become
    /// [`ErrorCode::Transport`], server-side `error` objects parse
    /// back into their original typed form.
    fn typed_request(&mut self, request: &Json) -> Result<Json, ApiError> {
        let response = self
            .request(request)
            .map_err(|e| ApiError::new(ErrorCode::Transport, e.to_string()))?;
        response_or_error(response)
    }

    /// Typed v1 `health`.
    pub fn check_health(&mut self) -> Result<HealthInfo, ApiError> {
        let v = self.typed_request(&self.envelope(vec![("op", Json::from("health"))]))?;
        Ok(HealthInfo {
            status: req_str(&v, "status")?,
            kernels: req_usize(&v, "kernels")?,
            graphs: req_usize(&v, "graphs")?,
            workers: req_usize(&v, "workers")?,
            queue_depth: req_usize(&v, "queue_depth")?,
            queue_capacity: req_usize(&v, "queue_capacity")?,
        })
    }

    /// Typed v1 `kernels`.
    pub fn list_kernels(&mut self) -> Result<Vec<KernelInfo>, ApiError> {
        let v = self.typed_request(&self.envelope(vec![("op", Json::from("kernels"))]))?;
        let items = v.get("kernels").and_then(Json::as_array).ok_or_else(|| {
            ApiError::new(ErrorCode::Transport, "kernels response without a list")
        })?;
        items
            .iter()
            .map(|k| {
                Ok(KernelInfo {
                    name: req_str(k, "name")?,
                    category: req_str(k, "category")?,
                    about: req_str(k, "about")?,
                })
            })
            .collect()
    }

    /// Typed v1 `stats` (the shape is deliberately open-ended, so
    /// the full object is returned).
    pub fn fetch_stats(&mut self) -> Result<Json, ApiError> {
        self.typed_request(&self.envelope(vec![("op", Json::from("stats"))]))
    }

    /// Typed v1 `load` with the graph text inline.
    pub fn load_graph_inline(
        &mut self,
        name: &str,
        format: &str,
        data: &str,
    ) -> Result<LoadOutcome, ApiError> {
        let request = self.envelope(vec![
            ("op", Json::from("load")),
            ("graph", Json::from(name)),
            ("format", Json::from(format)),
            ("data", Json::from(data)),
        ]);
        LoadOutcome::from_json(&self.typed_request(&request)?)
    }

    /// Typed v1 `load` from a path on the server's filesystem.
    pub fn load_graph_path(
        &mut self,
        name: &str,
        format: &str,
        path: &str,
    ) -> Result<LoadOutcome, ApiError> {
        let request = self.envelope(vec![
            ("op", Json::from("load")),
            ("graph", Json::from(name)),
            ("format", Json::from(format)),
            ("path", Json::from(path)),
        ]);
        LoadOutcome::from_json(&self.typed_request(&request)?)
    }

    /// Typed v1 `run`.
    pub fn run_kernel(
        &mut self,
        kernel: &str,
        graph: &str,
        params: &[(&str, Json)],
    ) -> Result<RunOutcome, ApiError> {
        let request = self.envelope(vec![
            ("op", Json::from("run")),
            ("kernel", Json::from(kernel)),
            ("graph", Json::from(graph)),
            (
                "params",
                Json::Object(
                    params
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                ),
            ),
        ]);
        let v = self.typed_request(&request)?;
        Ok(RunOutcome {
            kernel: req_str(&v, "kernel")?,
            graph: req_str(&v, "graph")?,
            patterns: v.get("patterns").and_then(Json::as_i64).unwrap_or(0) as u64,
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            kernel_ms: v.get("kernel_ms").and_then(Json::as_f64).unwrap_or(0.0),
            total_ms: v.get("total_ms").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }

    /// Typed v1 `add_edges`/`remove_edges`: applies `add` then
    /// `remove` (skipping empty batches) and returns the final graph
    /// identity. Both ops are idempotent, so they ride the
    /// reconnect-and-retry path.
    pub fn mutate_graph(
        &mut self,
        graph: &str,
        add: &[(u32, u32)],
        remove: &[(u32, u32)],
    ) -> Result<MutateOutcome, ApiError> {
        let mut last: Option<MutateOutcome> = None;
        for (op, edges) in [("add_edges", add), ("remove_edges", remove)] {
            if edges.is_empty() {
                continue;
            }
            let request = self.envelope(vec![
                ("op", Json::from(op)),
                ("graph", Json::from(graph)),
                ("edges", edges_json(edges)),
            ]);
            let response = self
                .request_idempotent(&request)
                .map_err(|e| ApiError::new(ErrorCode::Transport, e.to_string()))?;
            let v = response_or_error(response)?;
            last = Some(MutateOutcome {
                fingerprint: req_str(&v, "fingerprint")?,
                version: req_usize(&v, "version")? as u64,
                added: req_usize(&v, "added")?,
                removed: req_usize(&v, "removed")?,
                vertices: req_usize(&v, "vertices")?,
                edges: req_usize(&v, "edges")?,
            })
        }
        last.ok_or_else(|| {
            ApiError::new(
                ErrorCode::BadRequest,
                "mutate_graph needs at least one edge to add or remove",
            )
        })
    }

    /// `{"op":"health"}`.
    pub fn health(&mut self) -> std::io::Result<Json> {
        self.request(&Json::object([("op", Json::from("health"))]))
    }

    /// `{"op":"stats"}`.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request(&Json::object([("op", Json::from("stats"))]))
    }

    /// `{"op":"kernels"}`.
    pub fn kernels(&mut self) -> std::io::Result<Json> {
        self.request(&Json::object([("op", Json::from("kernels"))]))
    }

    /// Loads a graph from text sent inline with the request.
    pub fn load_inline(&mut self, name: &str, format: &str, data: &str) -> std::io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::from("load")),
            ("graph", Json::from(name)),
            ("format", Json::from(format)),
            ("data", Json::from(data)),
        ]))
    }

    /// Loads a graph from a path on the server's filesystem.
    pub fn load_path(&mut self, name: &str, format: &str, path: &str) -> std::io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::from("load")),
            ("graph", Json::from(name)),
            ("format", Json::from(format)),
            ("path", Json::from(path)),
        ]))
    }

    /// Adds a batch of undirected edges to a loaded graph. Set
    /// semantics make the batch idempotent (already-present edges are
    /// no-ops), so the request rides the reconnect-and-retry path —
    /// a lost response is safe to replay.
    pub fn add_edges(&mut self, graph: &str, edges: &[(u32, u32)]) -> std::io::Result<Json> {
        self.mutate_edges("add_edges", graph, edges)
    }

    /// Removes a batch of undirected edges from a loaded graph. Set
    /// semantics make the batch idempotent (already-absent edges are
    /// no-ops), so the request rides the reconnect-and-retry path.
    pub fn remove_edges(&mut self, graph: &str, edges: &[(u32, u32)]) -> std::io::Result<Json> {
        self.mutate_edges("remove_edges", graph, edges)
    }

    fn mutate_edges(
        &mut self,
        op: &str,
        graph: &str,
        edges: &[(u32, u32)],
    ) -> std::io::Result<Json> {
        self.request_idempotent(&Json::object([
            ("op", Json::from(op)),
            ("graph", Json::from(graph)),
            ("edges", edges_json(edges)),
        ]))
    }

    /// Runs a kernel on a loaded graph with parameter overrides.
    pub fn run(
        &mut self,
        kernel: &str,
        graph: &str,
        params: &[(&str, Json)],
    ) -> std::io::Result<Json> {
        self.request(&Json::object([
            ("op", Json::from("run")),
            ("kernel", Json::from(kernel)),
            ("graph", Json::from(graph)),
            (
                "params",
                Json::Object(
                    params
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.clone()))
                        .collect(),
                ),
            ),
        ]))
    }

    /// Requests a graceful shutdown and returns the acknowledgment.
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.request(&Json::object([("op", Json::from("shutdown"))]))
    }
}

fn edges_json(edges: &[(u32, u32)]) -> Json {
    Json::Array(
        edges
            .iter()
            .map(|&(u, v)| Json::Array(vec![Json::from(u as i64), Json::from(v as i64)]))
            .collect(),
    )
}

/// Splits a response into success (`Ok(response)`) or its typed
/// error.
fn response_or_error(response: Json) -> Result<Json, ApiError> {
    if response.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(response);
    }
    match response.get("error") {
        Some(error) => Err(ApiError::from_json(error)),
        None => Err(ApiError::new(
            ErrorCode::Transport,
            format!(
                "response carries neither ok nor error: {}",
                response.render()
            ),
        )),
    }
}

fn missing(key: &str) -> ApiError {
    ApiError::new(
        ErrorCode::Transport,
        format!("response is missing the {key:?} member"),
    )
}

fn req_str(v: &Json, key: &str) -> Result<String, ApiError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| missing(key))
}

fn req_usize(v: &Json, key: &str) -> Result<usize, ApiError> {
    v.get(key)
        .and_then(Json::as_i64)
        .filter(|&n| n >= 0)
        .map(|n| n as usize)
        .ok_or_else(|| missing(key))
}

/// Typed v1 `health` response.
#[derive(Clone, Debug)]
pub struct HealthInfo {
    /// `"serving"` or `"shutting-down"`.
    pub status: String,
    /// Registered kernels.
    pub kernels: usize,
    /// Loaded graphs.
    pub graphs: usize,
    /// Worker sessions.
    pub workers: usize,
    /// Requests waiting in the admission queue.
    pub queue_depth: usize,
    /// Admission-queue bound.
    pub queue_capacity: usize,
}

/// One kernel from the typed v1 `kernels` listing.
#[derive(Clone, Debug)]
pub struct KernelInfo {
    /// Registered name.
    pub name: String,
    /// Category label.
    pub category: String,
    /// One-line description.
    pub about: String,
}

/// Typed v1 `load` response.
#[derive(Clone, Debug)]
pub struct LoadOutcome {
    /// Registered graph name.
    pub graph: String,
    /// Vertex count.
    pub vertices: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Content fingerprint (hex).
    pub fingerprint: String,
    /// Resident representation (`"none"` or `"gap"`).
    pub compression: String,
    /// Whether an existing graph under this name was replaced.
    pub replaced: bool,
}

impl LoadOutcome {
    fn from_json(v: &Json) -> Result<Self, ApiError> {
        Ok(Self {
            graph: req_str(v, "graph")?,
            vertices: req_usize(v, "vertices")?,
            edges: req_usize(v, "edges")?,
            fingerprint: req_str(v, "fingerprint")?,
            compression: req_str(v, "compression")?,
            replaced: v.get("replaced").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// Typed v1 `run` response (payload summarized, not materialized —
/// stream over HTTP for the items).
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Kernel that ran.
    pub kernel: String,
    /// Graph it ran on.
    pub graph: String,
    /// Pattern count (cliques, triangles, embeddings, ...).
    pub patterns: u64,
    /// Whether the result came from the result cache.
    pub cached: bool,
    /// Kernel time in milliseconds (zero for cache hits).
    pub kernel_ms: f64,
    /// End-to-end pipeline time in milliseconds.
    pub total_ms: f64,
}

/// Typed v1 mutation response: the graph's new identity.
#[derive(Clone, Debug)]
pub struct MutateOutcome {
    /// New content fingerprint (hex).
    pub fingerprint: String,
    /// Mutation batches applied since registration.
    pub version: u64,
    /// Edges actually added by the batch.
    pub added: usize,
    /// Edges actually removed by the batch.
    pub removed: usize,
    /// Vertex count after the batch.
    pub vertices: usize,
    /// Undirected edge count after the batch.
    pub edges: usize,
}

/// A minimal HTTP/1.1 client for the `/v1` gateway. One connection
/// per request (`Connection: close`), which keeps it stateless and
/// lets it observe exactly how many chunks a streamed response
/// arrived in ([`HttpResponse::chunks`]).
pub struct HttpClient {
    addr: SocketAddr,
    config: ClientConfig,
    deadline_ms: Option<u64>,
    client_name: Option<String>,
    weight: u32,
}

/// One parsed HTTP response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, chunked transfer already decoded.
    pub body: String,
    /// Data chunks the body arrived in: 1 for a fixed-length body,
    /// the actual chunk count for `Transfer-Encoding: chunked`.
    pub chunks: usize,
}

impl HttpResponse {
    /// Header lookup (name lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as one JSON value.
    pub fn json(&self) -> Result<Json, ApiError> {
        Json::parse(self.body.trim())
            .map_err(|e| ApiError::new(ErrorCode::Transport, format!("unparsable body: {e}")))
    }

    /// Parses an NDJSON body (a streamed response) line by line.
    pub fn json_lines(&self) -> Result<Vec<Json>, ApiError> {
        self.body
            .lines()
            .filter(|line| !line.trim().is_empty())
            .map(|line| {
                Json::parse(line.trim()).map_err(|e| {
                    ApiError::new(ErrorCode::Transport, format!("unparsable line: {e}"))
                })
            })
            .collect()
    }

    /// The typed error this response carries, if it is a failure.
    pub fn error(&self) -> Option<ApiError> {
        let body = self.json().ok()?;
        body.get("error").map(ApiError::from_json)
    }
}

impl HttpClient {
    /// A client for the gateway at `addr` with default (blocking)
    /// timeouts; [`ClientBuilder::connect_http`] sets more.
    pub fn new<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        ClientBuilder::new().connect_http(addr)
    }

    /// The resolved gateway address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `GET` a path (e.g. `/v1/health`).
    pub fn get(&self, path: &str) -> Result<HttpResponse, ApiError> {
        self.round_trip("GET", path, None)
    }

    /// `POST` a JSON body to a path.
    pub fn post(&self, path: &str, body: &Json) -> Result<HttpResponse, ApiError> {
        self.round_trip("POST", path, Some(body))
    }

    /// `POST /v1/graphs`: load a graph from inline text.
    pub fn load_inline(
        &self,
        name: &str,
        format: &str,
        data: &str,
    ) -> Result<HttpResponse, ApiError> {
        self.post(
            "/v1/graphs",
            &Json::object([
                ("graph", Json::from(name)),
                ("format", Json::from(format)),
                ("data", Json::from(data)),
            ]),
        )
    }

    /// `POST /v1/graphs/{graph}/run`.
    pub fn run(
        &self,
        graph: &str,
        kernel: &str,
        params: &[(&str, Json)],
    ) -> Result<HttpResponse, ApiError> {
        self.post(
            &format!("/v1/graphs/{graph}/run"),
            &run_body(kernel, params),
        )
    }

    /// `POST /v1/graphs/{graph}/run?stream=1&limit=N`: chunked
    /// streaming with `limit` items per page.
    pub fn run_streaming(
        &self,
        graph: &str,
        kernel: &str,
        params: &[(&str, Json)],
        limit: usize,
    ) -> Result<HttpResponse, ApiError> {
        self.post(
            &format!("/v1/graphs/{graph}/run?stream=1&limit={limit}"),
            &run_body(kernel, params),
        )
    }

    /// `POST /v1/graphs/{graph}/mutate`.
    pub fn mutate(
        &self,
        graph: &str,
        add: &[(u32, u32)],
        remove: &[(u32, u32)],
    ) -> Result<HttpResponse, ApiError> {
        self.post(
            &format!("/v1/graphs/{graph}/mutate"),
            &Json::object([("add", edges_json(add)), ("remove", edges_json(remove))]),
        )
    }

    fn round_trip(
        &self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<HttpResponse, ApiError> {
        let transport = |e: std::io::Error| ApiError::new(ErrorCode::Transport, e.to_string());
        let mut stream = match self.config.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&self.addr, timeout),
            None => TcpStream::connect(self.addr),
        }
        .map_err(transport)?;
        stream.set_nodelay(true).map_err(transport)?;
        stream
            .set_read_timeout(self.config.read_timeout)
            .map_err(transport)?;

        let payload = body.map(|b| b.render()).unwrap_or_default();
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n",
            self.addr
        );
        if let Some(ms) = self.deadline_ms {
            head.push_str(&format!("X-Gms-Deadline-Ms: {ms}\r\n"));
        }
        if let Some(name) = &self.client_name {
            head.push_str(&format!("X-Gms-Client: {name}\r\n"));
        }
        if self.weight != 1 {
            head.push_str(&format!("X-Gms-Weight: {}\r\n", self.weight));
        }
        if body.is_some() {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                payload.len()
            ));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes()).map_err(transport)?;
        stream.write_all(payload.as_bytes()).map_err(transport)?;
        stream.flush().map_err(transport)?;

        // `Connection: close` means EOF delimits the response.
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).map_err(transport)?;
        parse_http_response(&raw)
    }
}

fn run_body(kernel: &str, params: &[(&str, Json)]) -> Json {
    Json::object([
        ("kernel", Json::from(kernel)),
        (
            "params",
            Json::Object(
                params
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            ),
        ),
    ])
}

fn parse_http_response(raw: &[u8]) -> Result<HttpResponse, ApiError> {
    let bad = |why: &str| ApiError::new(ErrorCode::Transport, format!("bad HTTP response: {why}"));
    let text = std::str::from_utf8(raw).map_err(|_| bad("not UTF-8"))?;
    let (head, body) = text.split_once("\r\n\r\n").ok_or_else(|| bad("no head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparsable status line"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    if !chunked {
        return Ok(HttpResponse {
            status,
            headers,
            body: body.to_string(),
            chunks: 1,
        });
    }
    // Decode chunked transfer, counting data chunks as they arrived.
    let mut decoded = String::new();
    let mut chunks = 0usize;
    let mut rest = body;
    loop {
        let (size_line, tail) = rest
            .split_once("\r\n")
            .ok_or_else(|| bad("truncated chunk"))?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| bad("unparsable chunk size"))?;
        if size == 0 {
            break;
        }
        if tail.len() < size {
            return Err(bad("short chunk"));
        }
        decoded.push_str(&tail[..size]);
        chunks += 1;
        rest = tail[size..]
            .strip_prefix("\r\n")
            .ok_or_else(|| bad("chunk without terminator"))?;
    }
    Ok(HttpResponse {
        status,
        headers,
        body: decoded,
        chunks,
    })
}
