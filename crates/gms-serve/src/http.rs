//! The `/v1` HTTP/1.1 gateway: the public face of the server.
//!
//! The server listens on **one** port and sniffs the first byte of
//! each connection: `{` means the NDJSON wire protocol, an ASCII
//! method letter means HTTP. Both planes map onto the same typed
//! [`Request`](crate::protocol::Request) structs, pass the same
//! admission queue, and are executed by the same worker pool — the
//! gateway is an adapter, not a second server.
//!
//! ```text
//! GET  /v1/health                  liveness + capacity probe
//! GET  /v1/kernels                 kernel listing with schemas
//! GET  /v1/stats                   cache / server / client stats
//! POST /v1/graphs                  load a graph (body: load spec)
//! POST /v1/graphs/{name}/run       run a kernel (body: {kernel, params})
//! POST /v1/graphs/{name}/mutate    batched edge mutation
//! ```
//!
//! Failures reuse the NDJSON error body verbatim
//! (`{"v":1,"ok":false,"error":{code,message,retryable,...}}`) with
//! the status line picked by
//! [`ErrorCode::http_status`](crate::protocol::ErrorCode::http_status),
//! so the two surfaces never disagree about what went wrong.
//!
//! Request metadata rides in headers: `X-Gms-Deadline-Ms` (relative
//! deadline, propagated into the kernel as a cancellation token),
//! `X-Gms-Client` (fairness identity; defaults to the peer address),
//! and `X-Gms-Weight` (weighted-fair-queuing weight).
//!
//! Abuse is rejected before it costs memory or compute: a
//! `Content-Length` above the configured body cap answers `413`
//! *without reading the body*, a peer that trickles its request head
//! slower than the request timeout gets `408` (the slow-loris
//! guard), and over-deadline work is dropped at the next kernel
//! cancellation point.
//!
//! `POST /v1/graphs/{name}/run?stream=1&limit=N` switches the
//! response to `Transfer-Encoding: chunked` NDJSON streaming (see
//! [`stream`](crate::stream)): a meta line, then payload items in
//! pages of `N`, each page flushed as its own chunk.

use crate::json::Json;
use crate::protocol::{error_json, ApiError, ErrorCode, MutateSpec};
use crate::server::{
    health_json, kernels_json, stats_json, submit, DataOp, Job, Reply, Shared, SyncReply, READ_POLL,
};
use crate::stream::{stream_outcome, DEFAULT_PAGE_LIMIT};
use gms_core::{Edge, NodeId};
use gms_platform::kernel::CancelToken;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
struct HttpRequest {
    method: String,
    /// Path without the query string.
    path: String,
    /// `key=value` pairs from the query string, undecoded.
    query: Vec<(String, String)>,
    /// Header `(name, value)` pairs, names lowercased.
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpRequest {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

enum RecvError {
    /// Peer closed (or went idle into shutdown) between requests —
    /// not an error, just the end of the connection.
    Done,
    /// The slow-loris guard fired.
    Timeout,
    /// The head outgrew [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// Declared body above the configured cap.
    BodyTooLarge(usize),
    /// Anything else unparseable.
    Bad(String),
}

/// Serves HTTP requests on one sniffed connection until the peer
/// closes, an abuse guard fires, or the server shuts down.
pub(crate) fn http_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown-peer".to_string());
    // Bytes read past one request's body (a pipelined next request)
    // carry over to the next `recv_request` instead of being dropped.
    let mut carry: Vec<u8> = Vec::new();
    loop {
        let request = match recv_request(&mut stream, shared, &mut carry) {
            Ok(request) => request,
            Err(RecvError::Done) => return,
            Err(RecvError::Timeout) => {
                let error = ApiError::new(
                    ErrorCode::Timeout,
                    format!(
                        "request not completed within {:?} (slow-loris guard)",
                        shared.request_timeout
                    ),
                );
                let _ = send_error(&mut stream, &error, false);
                return;
            }
            Err(RecvError::HeadTooLarge) => {
                let error = ApiError::new(
                    ErrorCode::PayloadTooLarge,
                    format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                );
                let _ = send_error(&mut stream, &error, false);
                return;
            }
            Err(RecvError::BodyTooLarge(declared)) => {
                // Rejected on the Content-Length header alone — the
                // oversized body was never read, let alone parsed.
                let error = ApiError::new(
                    ErrorCode::PayloadTooLarge,
                    format!(
                        "declared body of {declared} bytes exceeds the {}-byte cap",
                        shared.max_body_bytes
                    ),
                );
                let _ = send_error(&mut stream, &error, false);
                return;
            }
            Err(RecvError::Bad(message)) => {
                let error = ApiError::new(ErrorCode::BadRequest, message);
                let _ = send_error(&mut stream, &error, false);
                return;
            }
        };
        shared
            .counters
            .http_requests
            .fetch_add(1, Ordering::Relaxed);
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let keep_alive = !request.wants_close();
        if handle_request(&mut stream, shared, &request, &peer, keep_alive).is_err() {
            return; // peer hung up mid-response
        }
        if !keep_alive || !shared.running() {
            return;
        }
    }
}

/// Reads one complete request. Idle waiting between requests is
/// unbounded (keep-alive), but once the first byte arrives the whole
/// head+body must land within `shared.request_timeout`. `carry`
/// seeds the parse with bytes already read past the previous body
/// (pipelining) and receives this request's own overrun on return.
fn recv_request(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    carry: &mut Vec<u8>,
) -> Result<HttpRequest, RecvError> {
    // Phase 0: wait for the first byte (poll so shutdown is noticed)
    // — unless a pipelined request is already buffered.
    if carry.is_empty() {
        let mut probe = [0u8; 1];
        loop {
            match stream.peek(&mut probe) {
                Ok(0) => return Err(RecvError::Done),
                Ok(_) => break,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if !shared.running() {
                        return Err(RecvError::Done);
                    }
                }
                Err(_) => return Err(RecvError::Done),
            }
        }
    }
    let deadline = Instant::now() + shared.request_timeout;

    // Phase 1: the head, terminated by CRLFCRLF.
    let mut buf: Vec<u8> = std::mem::take(carry);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RecvError::HeadTooLarge);
        }
        read_some(stream, &mut buf, deadline)?;
    };
    let head = String::from_utf8(buf[..head_end].to_vec())
        .map_err(|_| RecvError::Bad("request head is not valid UTF-8".to_string()))?;
    let mut rest = buf.split_off(head_end + 4);
    std::mem::swap(&mut buf, &mut rest); // buf = bytes past the head

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().unwrap_or("").to_string();
    if method.is_empty() || target.is_empty() {
        return Err(RecvError::Bad(format!(
            "malformed request line {request_line:?}"
        )));
    }
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();

    // Phase 2: the body cap is enforced on the *declared* length,
    // before any body byte is read or buffered.
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| RecvError::Bad("unparseable Content-Length".to_string()))?
        .unwrap_or(0);
    if content_length > shared.max_body_bytes {
        return Err(RecvError::BodyTooLarge(content_length));
    }
    while buf.len() < content_length {
        read_some(stream, &mut buf, deadline)?;
    }
    // Bytes past the body belong to the next pipelined request.
    *carry = buf.split_off(content_length);

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();
    Ok(HttpRequest {
        method,
        path,
        query,
        headers,
        body: buf,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One bounded read append; maps timeouts against `deadline` to the
/// slow-loris error.
fn read_some(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    deadline: Instant,
) -> Result<(), RecvError> {
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(RecvError::Done),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                return Ok(());
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if Instant::now() >= deadline {
                    return Err(RecvError::Timeout);
                }
            }
            Err(_) => return Err(RecvError::Done),
        }
    }
}

/// Routes one parsed request and writes the response.
fn handle_request(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &HttpRequest,
    peer: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "health"]) => send_json(stream, 200, &health_json(shared, None), keep_alive),
        ("GET", ["v1", "kernels"]) => {
            send_json(stream, 200, &kernels_json(shared, None), keep_alive)
        }
        ("GET", ["v1", "stats"]) => send_json(stream, 200, &stats_json(shared, None), keep_alive),
        ("POST", ["v1", "graphs"]) => {
            data_plane(stream, shared, request, peer, keep_alive, |body| {
                Ok(DataOp::Load(crate::protocol::load_spec(body)?))
            })
        }
        ("POST", ["v1", "graphs", name, "run"]) => {
            let graph = (*name).to_string();
            data_plane(stream, shared, request, peer, keep_alive, move |body| {
                let kernel = body
                    .get("kernel")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        ApiError::new(ErrorCode::BadRequest, "body requires a string \"kernel\"")
                    })?
                    .to_string();
                let params = match body.get("params") {
                    None => gms_platform::kernel::Params::new(),
                    Some(v) => crate::protocol::params_from_json(v)?,
                };
                Ok(DataOp::Run(crate::protocol::RunSpec {
                    kernel,
                    graph: graph.clone(),
                    params,
                }))
            })
        }
        ("POST", ["v1", "graphs", name, "mutate"]) => {
            let graph = (*name).to_string();
            data_plane(stream, shared, request, peer, keep_alive, move |body| {
                let add = edges_member(body, "add")?;
                let remove = edges_member(body, "remove")?;
                if add.is_empty() && remove.is_empty() {
                    return Err(ApiError::new(
                        ErrorCode::BadRequest,
                        "mutation body requires \"add\" and/or \"remove\" edge arrays",
                    ));
                }
                Ok(DataOp::Mutate(MutateSpec {
                    graph: graph.clone(),
                    add,
                    remove,
                }))
            })
        }
        _ => {
            let error = ApiError::new(
                ErrorCode::GraphNotFound,
                format!(
                    "no endpoint {} {} (see crates/gms-serve/README.md for the /v1 reference)",
                    request.method, request.path
                ),
            );
            send_error(stream, &error, keep_alive)
        }
    }
}

/// Parses an optional `[[u,v],...]` member into edges.
fn edges_member(body: &Json, key: &str) -> Result<Vec<Edge>, ApiError> {
    let Some(value) = body.get(key) else {
        return Ok(Vec::new());
    };
    let items = value.as_array().ok_or_else(|| {
        ApiError::new(
            ErrorCode::BadRequest,
            format!("\"{key}\" must be an array of [u,v] pairs"),
        )
    })?;
    items
        .iter()
        .map(|item| {
            let pair = item.as_array().filter(|p| p.len() == 2);
            let endpoint = |v: &Json| -> Option<NodeId> {
                match v {
                    Json::Int(i) if (0..=i64::from(NodeId::MAX)).contains(i) => Some(*i as NodeId),
                    _ => None,
                }
            };
            pair.and_then(|p| Some((endpoint(&p[0])?, endpoint(&p[1])?)))
                .ok_or_else(|| {
                    ApiError::new(
                        ErrorCode::BadRequest,
                        format!(
                            "every \"{key}\" entry must be a [u,v] pair of non-negative integers"
                        ),
                    )
                })
        })
        .collect()
}

/// The shared data-plane path: parse the JSON body, build the op,
/// thread deadline/client/weight from headers, pass admission, block
/// on the worker's reply, and render it with the right status line
/// (or stream it chunked when asked).
fn data_plane(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request: &HttpRequest,
    peer: &str,
    keep_alive: bool,
    build: impl FnOnce(&Json) -> Result<DataOp, ApiError>,
) -> std::io::Result<()> {
    let body = if request.body.is_empty() {
        Json::Object(Vec::new())
    } else {
        match std::str::from_utf8(&request.body)
            .ok()
            .and_then(|text| Json::parse(text).ok())
        {
            Some(parsed) => parsed,
            None => {
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                let error = ApiError::new(ErrorCode::BadJson, "body is not valid JSON");
                return send_error(stream, &error, keep_alive);
            }
        }
    };
    let op = match build(&body) {
        Ok(op) => op,
        Err(error) => {
            shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
            return send_error(stream, &error, keep_alive);
        }
    };

    let deadline_ms = match request.header("x-gms-deadline-ms") {
        None => None,
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) if ms > 0 => Some(ms),
            _ => {
                let error = ApiError::new(
                    ErrorCode::BadRequest,
                    "X-Gms-Deadline-Ms must be a positive integer",
                );
                return send_error(stream, &error, keep_alive);
            }
        },
    };
    let weight = match request.header("x-gms-weight") {
        None => 1,
        Some(raw) => match raw.parse::<u32>() {
            Ok(w) if (1..=1024).contains(&w) => w,
            _ => {
                let error = ApiError::new(
                    ErrorCode::BadRequest,
                    "X-Gms-Weight must be an integer in 1..=1024",
                );
                return send_error(stream, &error, keep_alive);
            }
        },
    };
    let client = request
        .header("x-gms-client")
        .map(str::to_string)
        .unwrap_or_else(|| peer.to_string());
    let streaming = request.query_param("stream").is_some_and(|v| v == "1");
    let limit = request
        .query_param("limit")
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_PAGE_LIMIT);

    let cancel = match deadline_ms {
        Some(ms) => CancelToken::after(Duration::from_millis(ms)),
        None => CancelToken::none(),
    };
    let reply = SyncReply::new();
    let job = Job {
        op,
        id: None,
        reply: Reply::Sync(Arc::clone(&reply)),
        cancel,
        full_payload: streaming,
    };
    submit(shared, job, &client, weight);
    let response = reply.recv();

    // An error response carries its own status; success is 200.
    if let Some(error) = response.get("error") {
        let status = ApiError::from_json(error).code.http_status();
        return send_json(stream, status, &response, keep_alive);
    }
    if streaming {
        return stream_outcome(stream, &response, limit, keep_alive);
    }
    send_json(stream, 200, &response, keep_alive)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        421 => "Misdirected Request",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// Writes one fixed-length JSON response.
fn send_json(
    stream: &mut TcpStream,
    status: u16,
    body: &Json,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut payload = body.render();
    payload.push('\n');
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason(status),
        payload.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// Writes a typed error with its mapped status — the same error
/// object the NDJSON plane would send.
fn send_error(stream: &mut TcpStream, error: &ApiError, keep_alive: bool) -> std::io::Result<()> {
    send_json(
        stream,
        error.code.http_status(),
        &error_json(error, None),
        keep_alive,
    )
}
