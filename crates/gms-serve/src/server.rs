//! The server: acceptor, connection readers, admission queue, and a
//! fixed pool of worker sessions over one shared [`ResultCache`].
//!
//! ```text
//!            ┌─ conn thread ─┐   try_submit   ┌─ worker 0 ─┐
//!  TCP ──────┤ parse, answer ├───────────────►│  session   │──► response
//!  accept ───┤ control plane │  bounded queue └─ worker 1 ─┘    (writer
//!            └───────────────┘  (queue-full ⇒ shared cache       mutex)
//!                                429 analog)   + single-flight
//! ```
//!
//! The split mirrors the admission/execution separation of HTAP
//! serving systems: connection threads only parse and answer cheap
//! control-plane requests (`health`, `stats`, `kernels`,
//! `shutdown`); everything that costs kernel or I/O time (`load`,
//! `run`, `batch`) must pass the bounded [`AdmissionQueue`] first,
//! so a traffic spike degrades into fast `queue-full` rejections
//! instead of oversubscribing the compute pool. The worker count is
//! fixed at startup; each worker is one serving session with its own
//! owner tag on the shared result cache, so duplicate requests
//! landing on different workers still resolve to one kernel
//! execution (single-flight) and show up as cross-session hits in
//! the stats endpoint.

use crate::admission::{AdmissionQueue, RateLimit, SubmitError};
use crate::json::Json;
use crate::protocol::{
    error_json, fingerprint_json, mutation_json, outcome_json, outcome_json_full, with_id,
    ApiError, Envelope, ErrorCode, LoadCompression, LoadFormat, LoadSource, LoadSpec, MutateSpec,
    Request, RunSpec, WireError,
};
use gms_core::Graph;
use gms_graph::io::SnapshotGraph;
use gms_graph::{patch_csr, CompressedCsr};
use gms_platform::kernel::{
    fingerprint, migrate_for_delta, next_owner, CacheKey, CancelToken, GraphStore, MigrationStats,
    MutationOutcome, Registry, ResultCache,
};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a blocked connection read may go unanswered before the
/// thread re-checks the shutdown flag. Bounds shutdown latency for
/// idle connections.
pub(crate) const READ_POLL: Duration = Duration::from_millis(100);

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back
    /// from [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker sessions executing admitted requests.
    pub workers: usize,
    /// Admission-queue bound: pending requests beyond this are
    /// rejected with `queue-full`.
    pub queue_capacity: usize,
    /// Shared result-cache capacity in outcomes.
    pub cache_capacity: usize,
    /// Optional per-client token-bucket rate limit applied at
    /// admission (`None` = unlimited, the pre-v1 behavior).
    pub rate_limit: Option<RateLimit>,
    /// Largest inline request body (HTTP body or NDJSON line) in
    /// bytes; larger requests are rejected with `payload-too-large`
    /// *before* being materialized.
    pub max_body_bytes: usize,
    /// How long a peer may take to deliver one complete request
    /// (line or HTTP head) before the slow-loris guard answers
    /// `timeout` and closes the connection.
    pub request_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            rate_limit: None,
            max_body_bytes: 8 * 1024 * 1024,
            request_timeout: Duration::from_secs(5),
        }
    }
}

pub(crate) struct GraphEntry {
    store: Arc<GraphStore>,
    fingerprint: u64,
    /// Fingerprint at registration time — the stable identity edge
    /// mutations preserve (the router places shards by it).
    base_fingerprint: u64,
    /// Number of effective mutation batches applied since
    /// registration.
    version: u64,
    vertices: usize,
    edges: usize,
}

#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) connections: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) malformed: AtomicU64,
    /// Requests accepted without a `"v"` member — the deprecation
    /// gauge for pre-v1 clients.
    pub(crate) legacy_requests: AtomicU64,
    /// Requests refused by a per-client token bucket.
    pub(crate) rate_limited: AtomicU64,
    /// Requests that failed with `deadline-exceeded`.
    pub(crate) deadline_exceeded: AtomicU64,
    /// HTTP requests served by the `/v1` gateway (any method).
    pub(crate) http_requests: AtomicU64,
}

pub(crate) struct Shared {
    pub(crate) registry: Registry,
    pub(crate) cache: Arc<ResultCache>,
    pub(crate) graphs: RwLock<BTreeMap<String, GraphEntry>>,
    pub(crate) queue: AdmissionQueue<Job>,
    pub(crate) running: AtomicBool,
    pub(crate) counters: Counters,
    pub(crate) worker_served: Vec<AtomicU64>,
    pub(crate) addr: SocketAddr,
    pub(crate) max_body_bytes: usize,
    pub(crate) request_timeout: Duration,
}

impl Shared {
    pub(crate) fn running(&self) -> bool {
        self.running.load(Ordering::SeqCst)
    }

    /// Idempotent: stop admitting, drain the queue, wake the
    /// acceptor.
    fn begin_shutdown(&self) {
        if self.running.swap(false, Ordering::SeqCst) {
            self.queue.close();
            // Unblock the acceptor's `accept()` with a throwaway
            // connection; if that fails the acceptor still exits on
            // its next successful accept.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A shared, mutex-guarded handle on one connection's write half.
/// Workers serving requests from the same connection serialize their
/// response lines through it.
#[derive(Clone)]
pub(crate) struct ResponseWriter {
    stream: Arc<Mutex<TcpStream>>,
}

impl ResponseWriter {
    fn send(&self, response: &Json) {
        let mut line = response.render();
        line.push('\n');
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        // The client may have hung up; nothing useful to do then.
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.flush();
    }
}

/// A one-shot rendezvous an HTTP connection thread blocks on while
/// its admitted job crosses the worker pool.
pub(crate) struct SyncReply {
    slot: Mutex<Option<Json>>,
    ready: Condvar,
}

impl SyncReply {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn deliver(&self, response: Json) {
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(response);
        self.ready.notify_all();
    }

    /// Blocks until the worker delivers. Workers answer every job
    /// they dequeue and close() drains, so admitted jobs always
    /// resolve.
    pub(crate) fn recv(&self) -> Json {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(response) = slot.take() {
                return response;
            }
            slot = self.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Where a finished job's response goes: back onto an NDJSON
/// connection's write half, or into the [`SyncReply`] an HTTP thread
/// is blocked on.
pub(crate) enum Reply {
    Line(ResponseWriter),
    Sync(Arc<SyncReply>),
}

impl Reply {
    fn deliver(&self, response: Json) {
        match self {
            Reply::Line(writer) => writer.send(&response),
            Reply::Sync(reply) => reply.deliver(response),
        }
    }
}

pub(crate) enum DataOp {
    Load(LoadSpec),
    Mutate(MutateSpec),
    Run(RunSpec),
    Batch(Vec<RunSpec>),
}

pub(crate) struct Job {
    pub(crate) op: DataOp,
    pub(crate) id: Option<Json>,
    pub(crate) reply: Reply,
    /// The propagated request deadline; workers probe it before and
    /// during kernel execution.
    pub(crate) cancel: CancelToken,
    /// Render the full payload items into the response (the
    /// streaming HTTP endpoints page over them); NDJSON responses
    /// keep the compact summary.
    pub(crate) full_payload: bool,
}

/// The serving front end. [`Server::start`] binds, spawns the
/// acceptor and worker threads, and returns a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Starts a server per `config`. Fails only on bind errors; after
    /// this returns the server is accepting connections.
    pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            registry: Registry::with_builtins(),
            cache: Arc::new(ResultCache::new(config.cache_capacity)),
            graphs: RwLock::new(BTreeMap::new()),
            queue: AdmissionQueue::with_rate_limit(config.queue_capacity, config.rate_limit),
            running: AtomicBool::new(true),
            counters: Counters::default(),
            worker_served: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            addr,
            max_body_bytes: config.max_body_bytes,
            request_timeout: config.request_timeout,
        });

        let worker_threads: Vec<JoinHandle<()>> = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gms-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn worker thread")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gms-serve-acceptor".to_string())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawn acceptor thread")
        };

        Ok(ServerHandle {
            addr,
            shared,
            acceptor,
            workers: worker_threads,
        })
    }
}

/// A running server: its bound address plus shutdown/join control.
/// Dropping the handle without calling [`ServerHandle::join`] leaves
/// the server running detached until a client sends `shutdown`.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a graceful shutdown: stop accepting, answer
    /// everything already admitted, exit. Idempotent; also triggered
    /// by the protocol's `shutdown` op.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for the server to finish (after [`ServerHandle::shutdown`]
    /// or a client-driven `shutdown` op).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while shared.running() {
        match listener.accept() {
            Ok((stream, _)) => {
                if !shared.running() {
                    break;
                }
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("gms-serve-conn".to_string())
                    .spawn(move || connection_loop(stream, &shared))
                {
                    connections.push(handle);
                }
                // Opportunistically reap finished connection threads
                // so a long-lived server does not accumulate handles.
                connections.retain(|h| !h.is_finished());
            }
            Err(_) => {
                if !shared.running() {
                    break;
                }
            }
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Sniffs the first byte to pick a protocol: NDJSON requests start
/// with `{` (or leading whitespace); anything else — an HTTP method
/// letter — goes to the `/v1` HTTP gateway. Both planes share one
/// port, one admission queue, and one worker pool.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut first = [0u8; 1];
    loop {
        match stream.peek(&mut first) {
            Ok(0) => return, // closed before the first byte
            Ok(_) => {
                if first[0] == b'{' || first[0].is_ascii_whitespace() {
                    return ndjson_connection(stream, shared);
                }
                return crate::http::http_connection(stream, shared);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if !shared.running() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn ndjson_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // Responses are short: send them as soon as they are written.
    let _ = stream.set_nodelay(true);
    // Poll reads so an idle connection notices shutdown.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = ResponseWriter {
        stream: Arc::new(Mutex::new(stream)),
    };
    let mut reader = BufReader::new(read_half);
    // Byte-oriented line assembly with the body cap enforced *while*
    // bytes arrive: a newline-free stream is cut off at
    // `max_body_bytes`, never materialized — the same
    // reject-before-buffering guarantee the HTTP plane gets from
    // Content-Length. Partial lines survive timeout polls intact,
    // even mid-multibyte-character.
    let mut line: Vec<u8> = Vec::new();
    // Set after a too-long line: the remainder is consumed without
    // being stored, so memory stays bounded while the stream resyncs
    // on the next newline.
    let mut discarding = false;
    loop {
        if discarding {
            match discard_line(&mut reader) {
                Ok(true) => discarding = false, // resynced past the newline
                Ok(false) => break,             // client closed
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if !shared.running() {
                        break;
                    }
                }
                Err(_) => break,
            }
            continue;
        }
        match read_line_bounded(&mut reader, &mut line, shared.max_body_bytes) {
            Ok(LineRead::Closed) => break,
            Ok(LineRead::Line) => {
                let keep_going = match std::str::from_utf8(&line) {
                    Ok(text) => handle_line(text.trim(), shared, &writer),
                    Err(_) => {
                        shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                        writer.send(&error_json(
                            &WireError::new(ErrorCode::BadJson, "request line is not valid UTF-8"),
                            None,
                        ));
                        true
                    }
                };
                line.clear();
                if !keep_going {
                    break;
                }
            }
            Ok(LineRead::TooLong) => {
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                writer.send(&error_json(
                    &ApiError::new(
                        ErrorCode::PayloadTooLarge,
                        format!(
                            "request line exceeds the {}-byte cap",
                            shared.max_body_bytes
                        ),
                    ),
                    None,
                ));
                line.clear();
                discarding = true;
            }
            // Timeout poll: `line` keeps any partial read; loop
            // appends the rest once it arrives.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if !shared.running() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

enum LineRead {
    /// A full line (newline included) landed in the buffer.
    Line,
    /// The line under assembly outgrew `cap` before its newline.
    TooLong,
    /// EOF: the peer closed the connection.
    Closed,
}

/// Appends bytes up to and including the next `\n` onto `line`,
/// refusing to buffer more than `cap` bytes of a newline-free
/// stream. Timeouts surface as errors with the partial line kept.
fn read_line_bounded(
    reader: &mut impl BufRead,
    line: &mut Vec<u8>,
    cap: usize,
) -> std::io::Result<LineRead> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            // EOF terminates a non-empty final line, like `read_until`.
            return Ok(if line.is_empty() {
                LineRead::Closed
            } else {
                LineRead::Line
            });
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&available[..=pos]);
            reader.consume(pos + 1);
            return Ok(LineRead::Line);
        }
        let n = available.len();
        line.extend_from_slice(available);
        reader.consume(n);
        if line.len() > cap {
            return Ok(LineRead::TooLong);
        }
    }
}

/// Consumes bytes without storing them until a newline goes by.
/// Returns `Ok(true)` once resynced, `Ok(false)` at EOF; timeouts
/// surface as errors and the discard resumes on the next call.
fn discard_line(reader: &mut impl BufRead) -> std::io::Result<bool> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(false);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(true);
            }
            None => {
                let n = available.len();
                reader.consume(n);
            }
        }
    }
}

/// Processes one request line; returns `false` when the connection
/// should close (shutdown acknowledged).
fn handle_line(line: &str, shared: &Arc<Shared>, writer: &ResponseWriter) -> bool {
    if line.is_empty() {
        return true; // tolerate blank keep-alive lines
    }
    if line.len() > shared.max_body_bytes {
        shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
        writer.send(&error_json(
            &ApiError::new(
                ErrorCode::PayloadTooLarge,
                format!(
                    "request line of {} bytes exceeds the {}-byte cap",
                    line.len(),
                    shared.max_body_bytes
                ),
            ),
            None,
        ));
        return true;
    }
    let envelope = match crate::protocol::parse_envelope(line) {
        Ok(envelope) => envelope,
        Err((error, id)) => {
            shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
            writer.send(&error_json(&error, id.as_ref()));
            return true;
        }
    };
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    if !envelope.versioned {
        shared
            .counters
            .legacy_requests
            .fetch_add(1, Ordering::Relaxed);
    }
    let Envelope {
        request,
        id,
        deadline_ms,
        client,
        weight,
        ..
    } = envelope;
    // `Request::is_control` is the single source of truth for the
    // plane split; the matches below panic loudly if it drifts.
    if request.is_control() {
        return answer_control(request, shared, writer, id);
    }
    let op = match request {
        Request::Load(spec) => DataOp::Load(spec),
        Request::Mutate(spec) => DataOp::Mutate(spec),
        Request::Run(spec) => DataOp::Run(spec),
        Request::Batch(specs) => DataOp::Batch(specs),
        control => unreachable!("control op routed to the data plane: {control:?}"),
    };
    let cancel = match deadline_ms {
        Some(ms) => CancelToken::after(Duration::from_millis(ms)),
        None => CancelToken::none(),
    };
    let job = Job {
        op,
        id,
        reply: Reply::Line(writer.clone()),
        cancel,
        full_payload: false,
    };
    submit(shared, job, client.as_deref().unwrap_or(""), weight);
    true
}

/// Answers a control-plane request inline on the connection thread;
/// returns `false` when the connection should close (shutdown).
fn answer_control(
    request: Request,
    shared: &Arc<Shared>,
    writer: &ResponseWriter,
    id: Option<Json>,
) -> bool {
    match request {
        Request::Health => {
            writer.send(&health_json(shared, id.as_ref()));
            true
        }
        Request::Kernels => {
            writer.send(&kernels_json(shared, id.as_ref()));
            true
        }
        Request::Stats => {
            writer.send(&stats_json(shared, id.as_ref()));
            true
        }
        Request::Shutdown => {
            writer.send(&with_id(
                vec![
                    ("ok", Json::Bool(true)),
                    ("status", Json::from("shutting-down")),
                ],
                id.as_ref(),
            ));
            shared.begin_shutdown();
            false
        }
        data => unreachable!("data-plane op answered inline: {data:?}"),
    }
}

/// Admission control: data-plane requests either enter the bounded
/// queue under their client's identity and weight, or are rejected
/// right here on the connection thread — the rejection travels back
/// through the job's own reply channel, so NDJSON and HTTP callers
/// share one code path.
pub(crate) fn submit(shared: &Arc<Shared>, job: Job, client: &str, weight: u32) {
    if !shared.running() {
        let response = error_json(
            &WireError::new(ErrorCode::ShuttingDown, "server is shutting down"),
            job.id.as_ref(),
        );
        job.reply.deliver(response);
        return;
    }
    match shared.queue.try_submit_as(client, weight, job) {
        Ok(()) => {}
        Err(SubmitError::Full(job)) => {
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            let response = error_json(
                &WireError::new(
                    ErrorCode::QueueFull,
                    format!(
                        "admission queue at capacity ({}); retry later",
                        shared.queue.capacity()
                    ),
                ),
                job.id.as_ref(),
            );
            job.reply.deliver(response);
        }
        Err(SubmitError::RateLimited(job)) => {
            shared.counters.rate_limited.fetch_add(1, Ordering::Relaxed);
            let response = error_json(
                &WireError::new(
                    ErrorCode::RateLimited,
                    format!("client {client:?} is over its rate limit; slow down"),
                ),
                job.id.as_ref(),
            );
            job.reply.deliver(response);
        }
        Err(SubmitError::Closed(job)) => {
            let response = error_json(
                &WireError::new(ErrorCode::ShuttingDown, "server is shutting down"),
                job.id.as_ref(),
            );
            job.reply.deliver(response);
        }
    }
}

/// One worker session: drains the admission queue until the server
/// shuts down. The owner tag attributes this worker's cache traffic,
/// so hits on entries another worker paid for count as cross-session.
fn worker_loop(shared: &Arc<Shared>, index: usize) {
    let owner = next_owner();
    while let Some(job) = shared.queue.dequeue() {
        let deadline_error = || {
            shared
                .counters
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            ApiError::new(
                ErrorCode::DeadlineExceeded,
                "deadline exceeded before the request completed",
            )
        };
        // A request whose deadline passed while queued fails without
        // costing any kernel time — the worker is immediately free
        // for the next job.
        let response = if job.cancel.expired() {
            error_json(&deadline_error(), job.id.as_ref())
        } else {
            match job.op {
                DataOp::Load(spec) => match execute_load(shared, &spec) {
                    Ok(body) => with_id(body, job.id.as_ref()),
                    Err(e) => error_json(&e, job.id.as_ref()),
                },
                DataOp::Mutate(spec) => match execute_mutate(shared, &spec) {
                    Ok(outcome) => mutation_json(&spec.graph, &outcome, job.id.as_ref()),
                    Err(e) => error_json(&e, job.id.as_ref()),
                },
                DataOp::Run(spec) => match execute_run(shared, owner, &spec, &job.cancel) {
                    Ok(outcome) if job.full_payload => {
                        outcome_json_full(&spec, &outcome, job.id.as_ref())
                    }
                    Ok(outcome) => outcome_json(&spec, &outcome, job.id.as_ref()),
                    Err(e) => {
                        if e.code == ErrorCode::DeadlineExceeded {
                            let _ = deadline_error();
                        }
                        error_json(&e, job.id.as_ref())
                    }
                },
                DataOp::Batch(specs) => {
                    let results: Vec<Json> = specs
                        .iter()
                        .map(|spec| {
                            if job.cancel.expired() {
                                return error_json(&deadline_error(), None);
                            }
                            match execute_run(shared, owner, spec, &job.cancel) {
                                Ok(outcome) => outcome_json(spec, &outcome, None),
                                Err(e) => {
                                    if e.code == ErrorCode::DeadlineExceeded {
                                        let _ = deadline_error();
                                    }
                                    error_json(&e, None)
                                }
                            }
                        })
                        .collect();
                    with_id(
                        vec![("ok", Json::Bool(true)), ("results", Json::Array(results))],
                        job.id.as_ref(),
                    )
                }
            }
        };
        job.reply.deliver(response);
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
        shared.worker_served[index].fetch_add(1, Ordering::Relaxed);
    }
}

fn execute_load(
    shared: &Arc<Shared>,
    spec: &LoadSpec,
) -> Result<Vec<(&'static str, Json)>, WireError> {
    let io_err = |e: gms_graph::io::GraphIoError| WireError::new(ErrorCode::Io, e.to_string());
    let store = match (&spec.format, &spec.source) {
        (LoadFormat::EdgeList, LoadSource::Path(p)) => {
            GraphStore::Csr(gms_graph::io::load_undirected(p).map_err(io_err)?)
        }
        (LoadFormat::EdgeList, LoadSource::Data(d)) => {
            GraphStore::Csr(gms_graph::io::load_undirected_from(d.as_bytes()).map_err(io_err)?)
        }
        (LoadFormat::Metis, LoadSource::Path(p)) => {
            GraphStore::Csr(gms_graph::io::load_metis(p).map_err(io_err)?)
        }
        (LoadFormat::Metis, LoadSource::Data(d)) => {
            GraphStore::Csr(gms_graph::io::load_metis_from(d.as_bytes()).map_err(io_err)?)
        }
        // A v2 snapshot stays compressed; a v1 snapshot materializes.
        (LoadFormat::Gcsr, LoadSource::Path(p)) => {
            match gms_graph::io::load_snapshot_auto(p).map_err(io_err)? {
                SnapshotGraph::Raw(g) => GraphStore::Csr(g),
                SnapshotGraph::Compressed(c) => GraphStore::Compressed(c),
            }
        }
        // The parser rejects inline gcsr before a job is built.
        (LoadFormat::Gcsr, LoadSource::Data(_)) => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                "gcsr is a binary format: send a \"path\", not inline \"data\"",
            ))
        }
    };
    // `compression: "gap"` recompresses whatever arrived raw; the
    // fingerprint is order-preserving, so cached outcomes carry over.
    let store = match (spec.compression, store) {
        (LoadCompression::Gap, GraphStore::Csr(g)) => {
            GraphStore::Compressed(CompressedCsr::from_csr(&g))
        }
        (_, store) => store,
    };
    let fp = store.fingerprint();
    let vertices = store.num_vertices();
    let edges = store.num_arcs() / 2;
    let compression = store.compression();
    let resident_bytes = store.resident_bytes();
    let (replaced, invalidated, base_fp, version) = {
        let mut graphs = shared.graphs.write().unwrap_or_else(|e| e.into_inner());
        match graphs.get(&spec.name) {
            // Idempotent re-registration: a retried `load` whose
            // earlier attempt died after registering (response lost
            // mid-body) finds identical content already under the
            // name and keeps the existing entry — lineage, version
            // and store untouched, nothing invalidated.
            Some(existing) if existing.fingerprint == fp => {
                (true, 0, existing.base_fingerprint, existing.version)
            }
            old => {
                let old_fp = old.map(|e| e.fingerprint);
                let entry = GraphEntry {
                    store: Arc::new(store),
                    fingerprint: fp,
                    base_fingerprint: fp,
                    version: 0,
                    vertices,
                    edges,
                };
                graphs.insert(spec.name.clone(), entry);
                match old_fp {
                    None => (false, 0, fp, 0),
                    Some(old_fp) => {
                        // Replacing a graph drops the old content's
                        // cached outcomes — unless the content is
                        // still reachable under another name.
                        let still_referenced = graphs.values().any(|e| e.fingerprint == old_fp);
                        let invalidated = if still_referenced {
                            0
                        } else {
                            shared.cache.invalidate_fingerprint(old_fp)
                        };
                        (true, invalidated, fp, 0)
                    }
                }
            }
        }
    };
    Ok(vec![
        ("ok", Json::Bool(true)),
        ("graph", Json::from(spec.name.clone())),
        ("vertices", Json::from(vertices)),
        ("edges", Json::from(edges)),
        ("fingerprint", fingerprint_json(fp)),
        ("base_fingerprint", fingerprint_json(base_fp)),
        ("version", Json::from(version)),
        ("compression", Json::from(compression)),
        ("resident_bytes", Json::from(resident_bytes)),
        ("replaced", Json::from(replaced)),
        ("invalidated", Json::from(invalidated)),
    ])
}

/// Applies a batched edge mutation under the graphs write lock, so
/// mutations to one graph serialize and no kernel admission can
/// observe a half-swapped entry. Cached outcomes of the old content
/// are migrated to the new fingerprint per kernel
/// [`DeltaSensitivity`](gms_platform::kernel::DeltaSensitivity)
/// declarations; an in-flight kernel still computing against the old
/// content cannot resurrect a migrated-away entry — its late insert
/// is dropped by the cache's invalidation epoch (`stale_drops`).
fn execute_mutate(shared: &Arc<Shared>, spec: &MutateSpec) -> Result<MutationOutcome, WireError> {
    let mut graphs = shared.graphs.write().unwrap_or_else(|e| e.into_inner());
    let entry = graphs.get(&spec.graph).ok_or_else(|| {
        WireError::new(
            ErrorCode::UnknownGraph,
            format!("no graph loaded under {:?}", spec.graph),
        )
    })?;
    let old_fp = entry.fingerprint;
    let (base_fp, version) = (entry.base_fingerprint, entry.version);
    let was_compressed = matches!(&*entry.store, GraphStore::Compressed(_));
    let old_csr = entry.store.to_csr();
    let (new_csr, delta) = patch_csr(&old_csr, &spec.add, &spec.remove)
        .map_err(|e| WireError::new(ErrorCode::BadMutation, e.to_string()))?;
    if delta.is_empty() {
        return Ok(MutationOutcome {
            fingerprint: old_fp,
            base_fingerprint: base_fp,
            version,
            added: 0,
            removed: 0,
            touched: 0,
            vertices: old_csr.num_vertices(),
            edges: old_csr.num_arcs() / 2,
            cache: MigrationStats::default(),
        });
    }
    let new_fp = fingerprint(&new_csr);
    let still_referenced = graphs
        .iter()
        .any(|(name, e)| name != &spec.graph && e.fingerprint == old_fp);
    let cache = if still_referenced {
        MigrationStats::default()
    } else {
        migrate_for_delta(
            &shared.cache,
            &shared.registry,
            &old_csr,
            &new_csr,
            old_fp,
            new_fp,
            &delta,
        )
    };
    let vertices = new_csr.num_vertices();
    let edges = new_csr.num_arcs() / 2;
    let (added, removed, touched) = (delta.added.len(), delta.removed.len(), delta.touched.len());
    let store = if was_compressed {
        GraphStore::Compressed(CompressedCsr::from_csr(&new_csr))
    } else {
        GraphStore::Csr(new_csr)
    };
    let entry = graphs.get_mut(&spec.graph).expect("entry checked above");
    entry.store = Arc::new(store);
    entry.fingerprint = new_fp;
    entry.version += 1;
    entry.vertices = vertices;
    entry.edges = edges;
    Ok(MutationOutcome {
        fingerprint: new_fp,
        base_fingerprint: base_fp,
        version: entry.version,
        added,
        removed,
        touched,
        vertices,
        edges,
        cache,
    })
}

fn execute_run(
    shared: &Arc<Shared>,
    owner: u64,
    spec: &RunSpec,
    cancel: &CancelToken,
) -> Result<gms_platform::kernel::Outcome, WireError> {
    let (store, fp) = {
        let graphs = shared.graphs.read().unwrap_or_else(|e| e.into_inner());
        let entry = graphs.get(&spec.graph).ok_or_else(|| {
            WireError::new(
                ErrorCode::UnknownGraph,
                format!("no graph loaded under {:?}", spec.graph),
            )
        })?;
        (Arc::clone(&entry.store), entry.fingerprint)
    };
    let kernel = shared.registry.get(&spec.kernel).ok_or_else(|| {
        WireError::new(
            ErrorCode::UnknownKernel,
            format!("unknown kernel {:?}", spec.kernel),
        )
    })?;
    let key = CacheKey::build(
        kernel,
        store.num_vertices() + 1,
        store.num_arcs(),
        fp,
        &spec.params,
    )
    .map_err(|e| WireError::from_kernel(&e))?;
    // The cancel token rides into the kernel's own cancellation
    // points; a fired token surfaces as `DeadlineExceeded`, which
    // `run_or_wait` never caches (and a waiting duplicate request is
    // promoted to leader with its *own* token, so one client's tight
    // deadline cannot poison another's identical request).
    shared
        .cache
        .run_or_wait(&key, owner, || match &*store {
            GraphStore::Csr(graph) => kernel.run_with_cancel(graph, &spec.params, cancel),
            GraphStore::Compressed(graph) => {
                kernel.run_compressed_with_cancel(graph, &spec.params, cancel)
            }
        })
        .map_err(|e| WireError::from_kernel(&e))
}

pub(crate) fn health_json(shared: &Arc<Shared>, id: Option<&Json>) -> Json {
    let graphs = shared.graphs.read().unwrap_or_else(|e| e.into_inner());
    with_id(
        vec![
            ("ok", Json::Bool(true)),
            (
                "status",
                Json::from(if shared.running() {
                    "serving"
                } else {
                    "shutting-down"
                }),
            ),
            ("addr", Json::from(shared.addr.to_string())),
            ("kernels", Json::from(shared.registry.len())),
            ("graphs", Json::from(graphs.len())),
            ("workers", Json::from(shared.worker_served.len())),
            ("queue_depth", Json::from(shared.queue.depth())),
            ("queue_capacity", Json::from(shared.queue.capacity())),
        ],
        id,
    )
}

pub(crate) fn kernels_json(shared: &Arc<Shared>, id: Option<&Json>) -> Json {
    let kernels: Vec<Json> = shared
        .registry
        .iter()
        .map(|k| {
            let params: Vec<Json> = k
                .params()
                .iter()
                .map(|spec| {
                    Json::object([
                        ("name", Json::from(spec.name)),
                        ("kind", Json::from(spec.kind.to_string())),
                        ("default", Json::from(spec.default.render())),
                        (
                            "choices",
                            Json::Array(spec.choices.iter().map(|&c| Json::from(c)).collect()),
                        ),
                    ])
                })
                .collect();
            Json::object([
                ("name", Json::from(k.name())),
                ("category", Json::from(k.category().label())),
                ("about", Json::from(k.about())),
                ("params", Json::Array(params)),
            ])
        })
        .collect();
    with_id(
        vec![("ok", Json::Bool(true)), ("kernels", Json::Array(kernels))],
        id,
    )
}

pub(crate) fn stats_json(shared: &Arc<Shared>, id: Option<&Json>) -> Json {
    let cache = shared.cache.stats();
    let counters = &shared.counters;
    let graphs: Vec<Json> = {
        let graphs = shared.graphs.read().unwrap_or_else(|e| e.into_inner());
        graphs
            .iter()
            .map(|(name, entry)| {
                Json::object([
                    ("name", Json::from(name.clone())),
                    ("vertices", Json::from(entry.vertices)),
                    ("edges", Json::from(entry.edges)),
                    ("fingerprint", fingerprint_json(entry.fingerprint)),
                    ("base_fingerprint", fingerprint_json(entry.base_fingerprint)),
                    ("version", Json::from(entry.version)),
                    ("compression", Json::from(entry.store.compression())),
                    ("resident_bytes", Json::from(entry.store.resident_bytes())),
                ])
            })
            .collect()
    };
    let worker_served: Vec<Json> = shared
        .worker_served
        .iter()
        .map(|count| Json::from(count.load(Ordering::Relaxed)))
        .collect();
    with_id(
        vec![
            ("ok", Json::Bool(true)),
            (
                "cache",
                Json::object([
                    ("hits", Json::from(cache.hits)),
                    ("misses", Json::from(cache.misses)),
                    ("evictions", Json::from(cache.evictions)),
                    ("coalesced", Json::from(cache.coalesced)),
                    ("cross_hits", Json::from(cache.cross_hits)),
                    ("invalidated", Json::from(cache.invalidated)),
                    ("migrated", Json::from(cache.migrated)),
                    ("refreshed", Json::from(cache.refreshed)),
                    ("stale_drops", Json::from(cache.stale_drops)),
                    ("entries", Json::from(cache.entries)),
                    ("capacity", Json::from(cache.capacity)),
                ]),
            ),
            (
                "server",
                Json::object([
                    ("workers", Json::from(shared.worker_served.len())),
                    (
                        "connections",
                        Json::from(counters.connections.load(Ordering::Relaxed)),
                    ),
                    (
                        "requests",
                        Json::from(counters.requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "completed",
                        Json::from(counters.completed.load(Ordering::Relaxed)),
                    ),
                    (
                        "rejected",
                        Json::from(counters.rejected.load(Ordering::Relaxed)),
                    ),
                    (
                        "malformed",
                        Json::from(counters.malformed.load(Ordering::Relaxed)),
                    ),
                    (
                        "legacy_requests",
                        Json::from(counters.legacy_requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "rate_limited",
                        Json::from(counters.rate_limited.load(Ordering::Relaxed)),
                    ),
                    (
                        "deadline_exceeded",
                        Json::from(counters.deadline_exceeded.load(Ordering::Relaxed)),
                    ),
                    (
                        "http_requests",
                        Json::from(counters.http_requests.load(Ordering::Relaxed)),
                    ),
                    ("queue_depth", Json::from(shared.queue.depth())),
                    ("queue_capacity", Json::from(shared.queue.capacity())),
                    ("worker_served", Json::Array(worker_served)),
                ]),
            ),
            (
                "clients",
                Json::Array(
                    shared
                        .queue
                        .client_stats()
                        .into_iter()
                        .map(|c| {
                            Json::object([
                                ("client", Json::from(c.client)),
                                ("weight", Json::from(u64::from(c.weight))),
                                ("pending", Json::from(c.pending)),
                                ("admitted", Json::from(c.admitted)),
                                ("served", Json::from(c.served)),
                                ("shed", Json::from(c.shed)),
                                ("rate_limited", Json::from(c.rate_limited)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("graphs", Json::Array(graphs)),
        ],
        id,
    )
}
