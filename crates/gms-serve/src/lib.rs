//! # gms-serve
//!
//! The long-running process around the GMS kernel platform: a
//! std-only TCP server speaking newline-delimited JSON (crates.io is
//! unreachable, so the wire layer — including its JSON — is built on
//! `std::net` alone), exposing the `gms-platform` registry/session
//! machinery as network endpoints with *admission control* in front
//! of the compute pool.
//!
//! The design separates request admission from execution resources
//! (the split HTAP serving systems like Polynesia make): connection
//! threads parse and answer cheap control-plane requests inline,
//! while every request that costs kernel or I/O time must pass a
//! bounded [`admission::AdmissionQueue`] — at capacity the server
//! answers `queue-full` immediately (the HTTP 429 analog) instead of
//! stacking work onto the fixed worker pool. N worker sessions share
//! one [`ResultCache`](gms_platform::kernel::ResultCache), so
//! duplicate requests resolve to one kernel execution (single-flight)
//! wherever they land, and replacing a loaded graph invalidates the
//! old content's cached outcomes.
//!
//! See `crates/gms-serve/README.md` for the protocol reference, and
//! run the server with `cargo run --release -p gms-serve`.
//!
//! ```
//! use gms_serve::{Client, Json, ServeConfig, Server};
//!
//! let handle = Server::start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let health = client.health().unwrap();
//! assert_eq!(health.get("ok"), Some(&Json::Bool(true)));
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod client;
mod http;
pub mod json;
pub mod protocol;
pub mod server;
mod stream;

pub use admission::{ClientStats, RateLimit};
pub use client::{Client, ClientBuilder, ClientConfig, HttpClient, HttpResponse};
pub use json::{Json, JsonError};
pub use protocol::{
    ApiError, Envelope, ErrorCode, LoadCompression, LoadFormat, LoadSource, LoadSpec, Request,
    RunSpec, WireError, PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server, ServerHandle};
