//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request is one JSON object on one line; the server answers
//! with exactly one JSON object on one line. Every request may carry
//! an `"id"` member (any scalar), echoed verbatim in the response so
//! clients that pipeline requests over one connection can match
//! answers to questions. The full format, endpoint by endpoint, is
//! documented in `crates/gms-serve/README.md`.
//!
//! **Versioning (v1).** Every response carries `"v":1` as its first
//! member. Requests *may* send `"v":1`; requests without it are
//! accepted for back-compatibility but counted as `legacy_requests`
//! in `stats` — the deprecation signal for pre-v1 clients. A request
//! envelope may further carry `"deadline_ms"` (a relative deadline
//! propagated into the kernel as a cancellation token), `"client"`
//! (the fairness identity), and `"weight"` (its scheduling weight);
//! see [`Envelope`].
//!
//! Errors are typed ([`ApiError`]): `{"ok":false,"error":{"code":...,
//! "message":...,"retryable":...}}` with the closed set of codes in
//! [`ErrorCode`] — rendered identically on the NDJSON wire and as
//! HTTP response bodies (where [`ErrorCode::http_status`] picks the
//! status line). `queue-full` and `rate-limited` are the
//! backpressure signals: the request was parsed but not admitted,
//! and the client should retry later or slow down.

use crate::json::Json;
use gms_core::{Edge, NodeId};
use gms_platform::kernel::{KernelError, MutationOutcome, Outcome, Params, Payload, Value};

/// The protocol version this server speaks: stamped on every
/// response, accepted (and required to match) when a request sends
/// `"v"`.
pub const PROTOCOL_VERSION: i64 = 1;

/// The closed set of error codes a response can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// Valid JSON, but not a well-formed request (unknown `op`,
    /// missing or mistyped members).
    BadRequest,
    /// The admission queue is at capacity; retry later (HTTP 429
    /// analog).
    QueueFull,
    /// No kernel registered under the requested name.
    UnknownKernel,
    /// A parameter name the kernel's schema does not declare.
    UnknownParam,
    /// A parameter with the wrong type or an inadmissible value.
    BadParam,
    /// No graph loaded under the requested name.
    UnknownGraph,
    /// Loading a graph failed (file missing, parse error, checksum
    /// mismatch, ...).
    Io,
    /// An edge-mutation batch was rejected (endpoint out of range —
    /// mutations cannot create vertices). The graph is untouched.
    BadMutation,
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
    /// Fleet vocabulary: the shard owning the requested graph is
    /// down and the request could not be served by a survivor.
    /// Retryable — the router keeps re-placing orphaned graphs.
    BackendUnavailable,
    /// Fleet vocabulary: the graph now lives on a different shard;
    /// the error object carries the new owner under `"addr"`. A
    /// client talking to the router can simply retry the request.
    Moved,
    /// Fleet vocabulary: the graph is not in the fleet-wide table
    /// (the router-level analog of a single process's
    /// `unknown-graph`).
    GraphNotFound,
    /// The request's deadline passed before the kernel completed;
    /// partial work was discarded and nothing was cached (HTTP 504
    /// analog). Retryable with a longer deadline.
    DeadlineExceeded,
    /// The client's token bucket is empty: admission was refused by
    /// the per-client rate limit, not by queue capacity (HTTP 429
    /// analog). Other clients are unaffected.
    RateLimited,
    /// An inline request body exceeded the configured size cap and
    /// was rejected before being materialized (HTTP 413 analog).
    PayloadTooLarge,
    /// The peer was too slow producing a complete request (the
    /// slow-loris guard; HTTP 408 analog).
    Timeout,
    /// Client-side vocabulary (never sent by a server): the
    /// transport failed before a well-formed response arrived —
    /// connect/read/write failure or an unparsable reply. Lets every
    /// typed client method fail with one [`ApiError`] shape.
    Transport,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::UnknownKernel => "unknown-kernel",
            ErrorCode::UnknownParam => "unknown-param",
            ErrorCode::BadParam => "bad-param",
            ErrorCode::UnknownGraph => "unknown-graph",
            ErrorCode::Io => "io-error",
            ErrorCode::BadMutation => "bad-mutation",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::BackendUnavailable => "backend-unavailable",
            ErrorCode::Moved => "moved",
            ErrorCode::GraphNotFound => "graph-not-found",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::RateLimited => "rate-limited",
            ErrorCode::PayloadTooLarge => "payload-too-large",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Transport => "transport",
        }
    }

    /// Whether retrying the identical request can succeed without the
    /// client changing anything (transient congestion / placement
    /// churn) — stamped into every rendered error so clients need no
    /// code-by-code retry table.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ErrorCode::QueueFull
                | ErrorCode::RateLimited
                | ErrorCode::ShuttingDown
                | ErrorCode::BackendUnavailable
                | ErrorCode::Moved
                | ErrorCode::Timeout
                | ErrorCode::DeadlineExceeded
                | ErrorCode::Transport
        )
    }

    /// The HTTP status line the `/v1` gateway answers with when a
    /// request fails with this code — the same typed error body is
    /// the response payload, so the two surfaces never disagree.
    pub fn http_status(&self) -> u16 {
        match self {
            ErrorCode::BadJson
            | ErrorCode::BadRequest
            | ErrorCode::BadParam
            | ErrorCode::UnknownParam
            | ErrorCode::BadMutation => 400,
            ErrorCode::UnknownKernel | ErrorCode::UnknownGraph | ErrorCode::GraphNotFound => 404,
            ErrorCode::Timeout => 408,
            ErrorCode::PayloadTooLarge => 413,
            ErrorCode::Moved => 421,
            ErrorCode::RateLimited => 429,
            ErrorCode::Io => 500,
            ErrorCode::BackendUnavailable | ErrorCode::Transport => 502,
            ErrorCode::QueueFull | ErrorCode::ShuttingDown => 503,
            ErrorCode::DeadlineExceeded => 504,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The one typed failure shape of the v1 API: every error — NDJSON
/// line, HTTP body, router verdict, client-side transport failure —
/// is one of these. Rendered as
/// `{"code":...,"message":...,"retryable":...}` plus any `details`
/// members (e.g. `moved` carries the new shard under `"addr"`).
///
/// This replaced three ad-hoc shapes (bare `WireError`, the router's
/// extra-member errors, and client-side `io::Error` strings); the
/// old [`WireError`] name remains as an alias for one release.
#[derive(Clone, Debug)]
pub struct ApiError {
    /// Which of the closed error codes.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Extra structured members rendered inside the error object,
    /// after `retryable`. Empty for most errors.
    pub details: Vec<(String, Json)>,
}

/// Deprecated spelling of [`ApiError`] — the pre-v1 name. Kept as an
/// alias so existing constructors keep compiling; new code should
/// say [`ApiError`].
pub type WireError = ApiError;

impl ApiError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
            details: Vec::new(),
        }
    }

    /// Attaches a structured detail member.
    pub fn with_detail(mut self, key: &str, value: Json) -> Self {
        self.details.push((key.to_string(), value));
        self
    }

    /// Whether retrying the identical request can succeed (see
    /// [`ErrorCode::retryable`]).
    pub fn retryable(&self) -> bool {
        self.code.retryable()
    }

    /// Maps a kernel-API error onto the wire codes.
    pub fn from_kernel(e: &KernelError) -> Self {
        let code = match e {
            KernelError::UnknownKernel(_) => ErrorCode::UnknownKernel,
            KernelError::UnknownParam { .. } => ErrorCode::UnknownParam,
            KernelError::BadParam { .. } => ErrorCode::BadParam,
            KernelError::InvalidHandle => ErrorCode::UnknownGraph,
            KernelError::NotMaterialized => ErrorCode::BadRequest,
            KernelError::BadMutation { .. } => ErrorCode::BadMutation,
            KernelError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        };
        Self::new(code, e.to_string())
    }

    /// Parses a rendered error object (the value under `"error"`)
    /// back into a typed [`ApiError`] — how the client surfaces
    /// server-side failures typed instead of as strings. Unknown
    /// codes map to the closest local meaning so old clients survive
    /// new servers.
    pub fn from_json(value: &Json) -> Self {
        let code_str = value.get("code").and_then(Json::as_str).unwrap_or("");
        let code = [
            ErrorCode::BadJson,
            ErrorCode::BadRequest,
            ErrorCode::QueueFull,
            ErrorCode::UnknownKernel,
            ErrorCode::UnknownParam,
            ErrorCode::BadParam,
            ErrorCode::UnknownGraph,
            ErrorCode::Io,
            ErrorCode::BadMutation,
            ErrorCode::ShuttingDown,
            ErrorCode::BackendUnavailable,
            ErrorCode::Moved,
            ErrorCode::GraphNotFound,
            ErrorCode::DeadlineExceeded,
            ErrorCode::RateLimited,
            ErrorCode::PayloadTooLarge,
            ErrorCode::Timeout,
            ErrorCode::Transport,
        ]
        .into_iter()
        .find(|c| c.as_str() == code_str)
        .unwrap_or(ErrorCode::Io);
        let message = value
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("unrecognized error shape")
            .to_string();
        let details = value
            .as_object()
            .map(|fields| {
                fields
                    .iter()
                    .filter(|(k, _)| k != "code" && k != "message" && k != "retryable")
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect()
            })
            .unwrap_or_default();
        Self {
            code,
            message,
            details,
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

/// On-disk / inline source of a graph to load.
#[derive(Clone, Debug)]
pub enum LoadSource {
    /// Load from a path on the server's filesystem.
    Path(String),
    /// Parse the graph text sent inline in the request.
    Data(String),
}

/// The graph formats the `load` endpoint accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadFormat {
    /// SNAP-style whitespace-separated edge list.
    EdgeList,
    /// METIS adjacency format.
    Metis,
    /// `.gcsr` binary CSR snapshot (path only — the binary format
    /// does not survive a JSON string).
    Gcsr,
}

impl LoadFormat {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "edge-list" => Some(LoadFormat::EdgeList),
            "metis" => Some(LoadFormat::Metis),
            "gcsr" => Some(LoadFormat::Gcsr),
            _ => None,
        }
    }
}

/// How a loaded graph is held resident, per the request's optional
/// `"compression"` member.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoadCompression {
    /// Raw CSR arrays (the default; also `"compression":"none"`).
    /// A v2 `.gcsr` file still loads compressed — the file's own
    /// encoding wins.
    #[default]
    None,
    /// `"compression":"gap"`: recompress into a gap+varint
    /// [`CompressedCsr`](gms_graph::CompressedCsr) after loading and
    /// serve kernels through the decode hot path. The fingerprint —
    /// and therefore the result cache — is unchanged.
    Gap,
}

impl LoadCompression {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(LoadCompression::None),
            "gap" => Some(LoadCompression::Gap),
            _ => None,
        }
    }
}

/// A parsed `load` request.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Server-side name to register the graph under; loading onto an
    /// existing name replaces that graph and invalidates its cached
    /// outcomes.
    pub name: String,
    /// Input format.
    pub format: LoadFormat,
    /// Where the bytes come from.
    pub source: LoadSource,
    /// Resident representation to hold the graph in.
    pub compression: LoadCompression,
}

/// A parsed `add_edges` / `remove_edges` request: one batched edge
/// mutation against a named graph. Set semantics — already-satisfied
/// requests are no-ops — so replaying a batch after a lost response
/// is safe (the client's idempotent-retry path uses this).
#[derive(Clone, Debug)]
pub struct MutateSpec {
    /// Server-side graph name.
    pub graph: String,
    /// Undirected edges to add.
    pub add: Vec<Edge>,
    /// Undirected edges to remove.
    pub remove: Vec<Edge>,
}

/// One kernel invocation inside a `run` or `batch` request.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Registered kernel name.
    pub kernel: String,
    /// Server-side graph name.
    pub graph: String,
    /// Parameter overrides.
    pub params: Params,
}

/// A fully parsed request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness and capacity probe (answered inline).
    Health,
    /// Kernel listing with parameter schemas (answered inline).
    Kernels,
    /// Cache / server / graph statistics (answered inline).
    Stats,
    /// Graceful shutdown (acknowledged inline, then the server
    /// drains and exits).
    Shutdown,
    /// Load or replace a graph (admitted through the queue).
    Load(LoadSpec),
    /// Apply a batched edge mutation (admitted through the queue).
    Mutate(MutateSpec),
    /// Run one kernel (admitted through the queue).
    Run(RunSpec),
    /// Run several kernels as one admitted unit.
    Batch(Vec<RunSpec>),
}

impl Request {
    /// Control-plane requests are answered by the connection thread
    /// itself; data-plane requests go through admission control.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Request::Health | Request::Kernels | Request::Stats | Request::Shutdown
        )
    }
}

fn required_str(obj: &Json, key: &str, op: &str) -> Result<String, WireError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| {
            WireError::new(
                ErrorCode::BadRequest,
                format!("op {op:?} requires a string {key:?} member"),
            )
        })
}

/// Converts a JSON `params` object into typed kernel [`Params`].
/// Only scalar members are admissible; `null`, arrays and nested
/// objects are rejected up front.
pub fn params_from_json(value: &Json) -> Result<Params, WireError> {
    let Some(fields) = value.as_object() else {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            "\"params\" must be an object",
        ));
    };
    let mut params = Params::new();
    for (key, v) in fields {
        let value = match v {
            Json::Int(i) => Value::Int(*i),
            Json::Float(x) => Value::Float(*x),
            Json::Bool(b) => Value::Bool(*b),
            Json::Str(s) => Value::Str(s.clone()),
            _ => {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    format!("parameter {key:?} must be a scalar"),
                ))
            }
        };
        params.set(key, value);
    }
    Ok(params)
}

fn run_spec(obj: &Json, op: &str) -> Result<RunSpec, WireError> {
    let params = match obj.get("params") {
        None => Params::new(),
        Some(v) => params_from_json(v)?,
    };
    Ok(RunSpec {
        kernel: required_str(obj, "kernel", op)?,
        graph: required_str(obj, "graph", op)?,
        params,
    })
}

/// Parses a load body (`graph`, `format`, `path`|`data`, optional
/// `compression`) — shared by the NDJSON `load` op and the HTTP
/// `POST /v1/graphs` endpoint.
pub(crate) fn load_spec(obj: &Json) -> Result<LoadSpec, WireError> {
    let name = required_str(obj, "graph", "load")?;
    let format_name = required_str(obj, "format", "load")?;
    let format = LoadFormat::parse(&format_name).ok_or_else(|| {
        WireError::new(
            ErrorCode::BadRequest,
            format!("unknown format {format_name:?} (expected edge-list, metis, or gcsr)"),
        )
    })?;
    let source = match (obj.get("path"), obj.get("data")) {
        (Some(p), None) => LoadSource::Path(
            p.as_str()
                .ok_or_else(|| WireError::new(ErrorCode::BadRequest, "\"path\" must be a string"))?
                .to_string(),
        ),
        (None, Some(d)) => {
            if format == LoadFormat::Gcsr {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    "gcsr is a binary format: send a \"path\", not inline \"data\"",
                ));
            }
            LoadSource::Data(
                d.as_str()
                    .ok_or_else(|| {
                        WireError::new(ErrorCode::BadRequest, "\"data\" must be a string")
                    })?
                    .to_string(),
            )
        }
        _ => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                "op \"load\" requires exactly one of \"path\" or \"data\"",
            ))
        }
    };
    let compression = match obj.get("compression") {
        None => LoadCompression::default(),
        Some(v) => {
            let text = v.as_str().ok_or_else(|| {
                WireError::new(ErrorCode::BadRequest, "\"compression\" must be a string")
            })?;
            LoadCompression::parse(text).ok_or_else(|| {
                WireError::new(
                    ErrorCode::BadRequest,
                    format!("unknown compression {text:?} (expected none or gap)"),
                )
            })?
        }
    };
    Ok(LoadSpec {
        name,
        format,
        source,
        compression,
    })
}

/// Parses a JSON `edges` array — `[[u,v],...]` with `u32` endpoints —
/// as sent by `add_edges` / `remove_edges`.
fn edges_from_json(obj: &Json, op: &str) -> Result<Vec<Edge>, WireError> {
    let items = obj.get("edges").and_then(Json::as_array).ok_or_else(|| {
        WireError::new(
            ErrorCode::BadRequest,
            format!("op {op:?} requires an \"edges\" array of [u,v] pairs"),
        )
    })?;
    let endpoint = |v: &Json| -> Option<NodeId> {
        match v {
            Json::Int(i) if (0..=NodeId::MAX as i64).contains(i) => Some(*i as NodeId),
            _ => None,
        }
    };
    items
        .iter()
        .map(|item| {
            let pair = item.as_array().filter(|p| p.len() == 2);
            pair.and_then(|p| Some((endpoint(&p[0])?, endpoint(&p[1])?)))
                .ok_or_else(|| {
                    WireError::new(
                        ErrorCode::BadRequest,
                        format!(
                            "every edge of op {op:?} must be a [u,v] pair of non-negative integers"
                        ),
                    )
                })
        })
        .collect()
}

fn mutate_spec(obj: &Json, op: &str) -> Result<MutateSpec, WireError> {
    let graph = required_str(obj, "graph", op)?;
    let edges = edges_from_json(obj, op)?;
    let (add, remove) = if op == "add_edges" {
        (edges, Vec::new())
    } else {
        (Vec::new(), edges)
    };
    Ok(MutateSpec { graph, add, remove })
}

/// The v1 request envelope: the parsed [`Request`] plus the members
/// every endpoint shares — the echoed `id`, the optional protocol
/// version, and the admission metadata (deadline, client identity,
/// fairness weight) that travels alongside the operation.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// The parsed operation.
    pub request: Request,
    /// The echoed `"id"` member, if one was sent.
    pub id: Option<Json>,
    /// Whether the request carried `"v":1`. Version-less requests
    /// are accepted (deprecation grace) but counted in `stats` as
    /// `legacy_requests`.
    pub versioned: bool,
    /// `"deadline_ms"`: relative deadline for the whole request,
    /// propagated into kernels as a cancellation token.
    pub deadline_ms: Option<u64>,
    /// `"client"`: the fairness / rate-limit identity. Connections
    /// that never say fall back to a per-transport default.
    pub client: Option<String>,
    /// `"weight"`: weighted-fair-queuing weight (≥ 1; default 1).
    pub weight: u32,
}

/// Parses one request line into the full v1 [`Envelope`]. On failure
/// the error still carries whatever `id` could be recovered, so even
/// malformed requests get a matchable response.
pub fn parse_envelope(line: &str) -> Result<Envelope, (ApiError, Option<Json>)> {
    let value =
        Json::parse(line).map_err(|e| (ApiError::new(ErrorCode::BadJson, e.to_string()), None))?;
    let id = value.get("id").cloned();
    let fail = |e: ApiError| (e, id.clone());
    let versioned = match value.get("v") {
        None => false,
        Some(Json::Int(v)) if *v == PROTOCOL_VERSION => true,
        Some(other) => {
            return Err(fail(ApiError::new(
                ErrorCode::BadRequest,
                format!(
                    "unsupported protocol version {} (this server speaks \"v\":{PROTOCOL_VERSION})",
                    other.render()
                ),
            )))
        }
    };
    let deadline_ms = match value.get("deadline_ms") {
        None => None,
        Some(Json::Int(ms)) if *ms > 0 => Some(*ms as u64),
        Some(_) => {
            return Err(fail(ApiError::new(
                ErrorCode::BadRequest,
                "\"deadline_ms\" must be a positive integer",
            )))
        }
    };
    let client = match value.get("client") {
        None => None,
        Some(Json::Str(name)) if !name.is_empty() => Some(name.clone()),
        Some(_) => {
            return Err(fail(ApiError::new(
                ErrorCode::BadRequest,
                "\"client\" must be a non-empty string",
            )))
        }
    };
    let weight = match value.get("weight") {
        None => 1,
        Some(Json::Int(w)) if (1..=1024).contains(w) => *w as u32,
        Some(_) => {
            return Err(fail(ApiError::new(
                ErrorCode::BadRequest,
                "\"weight\" must be an integer in 1..=1024",
            )))
        }
    };
    let (request, id) = parse_request_value(value, id)?;
    Ok(Envelope {
        request,
        id,
        versioned,
        deadline_ms,
        client,
        weight,
    })
}

/// Parses one request line. On success returns the request plus the
/// echoed `id`; on failure the error still carries whatever `id`
/// could be recovered, so even malformed requests get a matchable
/// response.
///
/// The pre-v1 entry point: ignores the envelope members
/// ([`parse_envelope`] reads those) but accepts the same lines.
#[allow(clippy::type_complexity)]
pub fn parse_request(line: &str) -> Result<(Request, Option<Json>), (WireError, Option<Json>)> {
    let value =
        Json::parse(line).map_err(|e| (WireError::new(ErrorCode::BadJson, e.to_string()), None))?;
    let id = value.get("id").cloned();
    parse_request_value(value, id)
}

#[allow(clippy::type_complexity)]
fn parse_request_value(
    value: Json,
    id: Option<Json>,
) -> Result<(Request, Option<Json>), (WireError, Option<Json>)> {
    let fail = |e: WireError| (e, id.clone());
    if value.as_object().is_none() {
        return Err(fail(WireError::new(
            ErrorCode::BadRequest,
            "a request is a JSON object",
        )));
    }
    let op = value.get("op").and_then(Json::as_str).ok_or_else(|| {
        fail(WireError::new(
            ErrorCode::BadRequest,
            "missing string \"op\"",
        ))
    })?;
    let request = match op {
        "health" => Request::Health,
        "kernels" => Request::Kernels,
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        "load" => Request::Load(load_spec(&value).map_err(&fail)?),
        "add_edges" | "remove_edges" => Request::Mutate(mutate_spec(&value, op).map_err(&fail)?),
        "run" => Request::Run(run_spec(&value, "run").map_err(&fail)?),
        "batch" => {
            let items = value
                .get("requests")
                .and_then(Json::as_array)
                .ok_or_else(|| {
                    fail(WireError::new(
                        ErrorCode::BadRequest,
                        "op \"batch\" requires a \"requests\" array",
                    ))
                })?;
            let specs = items
                .iter()
                .map(|item| run_spec(item, "batch"))
                .collect::<Result<Vec<_>, _>>()
                .map_err(&fail)?;
            Request::Batch(specs)
        }
        other => {
            return Err(fail(WireError::new(
                ErrorCode::BadRequest,
                format!("unknown op {other:?}"),
            )))
        }
    };
    Ok((request, id))
}

/// Assembles a response object: stamps the protocol version
/// (`"v":1`) as the first member and echoes the request's `id` (when
/// one was sent) as the last — the one envelope implementation every
/// response goes through (public so the `gms-router` front end
/// composes responses the same way).
pub fn with_id(fields: Vec<(&'static str, Json)>, id: Option<&Json>) -> Json {
    let mut members = Vec::with_capacity(fields.len() + 2);
    members.push(("v", Json::Int(PROTOCOL_VERSION)));
    members.extend(fields);
    if let Some(id) = id {
        members.push(("id", id.clone()));
    }
    Json::object(members)
}

/// Renders a typed error response: the [`ApiError`]'s own `details`
/// members ride inside the error object.
pub fn error_json(error: &ApiError, id: Option<&Json>) -> Json {
    error_json_with(error, &[], id)
}

/// Renders a typed error response with extra members inside the
/// error object — how `moved` carries the new shard under `"addr"`.
pub fn error_json_with(error: &ApiError, extra: &[(&str, Json)], id: Option<&Json>) -> Json {
    with_id(
        vec![
            ("ok", Json::Bool(false)),
            ("error", error_object(error, extra)),
        ],
        id,
    )
}

/// Renders just the error *object* (the value under `"error"`) — the
/// piece the HTTP gateway reuses as a response body so both surfaces
/// spell failures identically.
pub fn error_object(error: &ApiError, extra: &[(&str, Json)]) -> Json {
    let mut members = vec![
        ("code", Json::from(error.code.as_str())),
        ("message", Json::from(error.message.clone())),
        ("retryable", Json::Bool(error.retryable())),
    ];
    for (key, value) in &error.details {
        members.push((key.as_str(), value.clone()));
    }
    for (key, value) in extra {
        members.push((key, value.clone()));
    }
    Json::object(members)
}

fn payload_json(payload: &Payload) -> Json {
    match payload {
        Payload::None => Json::object([("type", Json::from("none"))]),
        Payload::VertexGroups(groups) => Json::object([
            ("type", Json::from("vertex-groups")),
            ("groups", Json::from(groups.len())),
        ]),
        Payload::Assignment(a) => Json::object([
            ("type", Json::from("assignment")),
            ("len", Json::from(a.len())),
        ]),
        Payload::Rank(r) => {
            Json::object([("type", Json::from("rank")), ("len", Json::from(r.len()))])
        }
        Payload::Scalar(x) => {
            Json::object([("type", Json::from("scalar")), ("value", Json::from(*x))])
        }
    }
}

/// Renders one page of a payload's items — the unit the streaming
/// HTTP endpoints emit chunk by chunk. `offset`/`limit` select the
/// page; the returned array is empty once `offset` walks off the
/// end. Scalar and empty payloads have no items to page.
pub fn payload_items_json(payload: &Payload, offset: usize, limit: usize) -> Json {
    match payload {
        Payload::None | Payload::Scalar(_) => Json::Array(Vec::new()),
        Payload::VertexGroups(groups) => Json::Array(
            groups
                .iter()
                .skip(offset)
                .take(limit)
                .map(|group| Json::Array(group.iter().map(|&v| Json::Int(i64::from(v))).collect()))
                .collect(),
        ),
        Payload::Assignment(a) => Json::Array(
            a.iter()
                .skip(offset)
                .take(limit)
                .map(|&x| Json::Int(i64::from(x)))
                .collect(),
        ),
        Payload::Rank(r) => Json::Array(
            r.iter()
                .skip(offset)
                .take(limit)
                .map(|&x| Json::Int(i64::from(x)))
                .collect(),
        ),
    }
}

/// How many pageable items a payload holds (the total the streaming
/// meta line announces).
pub fn payload_item_count(payload: &Payload) -> usize {
    match payload {
        Payload::None | Payload::Scalar(_) => 0,
        Payload::VertexGroups(groups) => groups.len(),
        Payload::Assignment(a) => a.len(),
        Payload::Rank(r) => r.len(),
    }
}

fn outcome_members(spec: &RunSpec, outcome: &Outcome, payload: Json) -> Vec<(&'static str, Json)> {
    vec![
        ("ok", Json::Bool(true)),
        ("kernel", Json::from(outcome.kernel)),
        ("graph", Json::from(spec.graph.clone())),
        ("patterns", Json::from(outcome.patterns)),
        ("cached", Json::from(outcome.cached)),
        (
            "kernel_ms",
            Json::from(outcome.timings.kernel.as_secs_f64() * 1e3),
        ),
        (
            "total_ms",
            Json::from(outcome.timings.total().as_secs_f64() * 1e3),
        ),
        ("payload", payload),
    ]
}

/// Renders a successful `run` response (also one element of a
/// `batch` response's `results` array). The payload is summarized
/// (counts, not items); [`outcome_json_full`] materializes it.
pub fn outcome_json(spec: &RunSpec, outcome: &Outcome, id: Option<&Json>) -> Json {
    with_id(
        outcome_members(spec, outcome, payload_json(&outcome.payload)),
        id,
    )
}

/// Renders a successful `run` response with the payload's items
/// materialized under `payload.items` (plus `payload.items_total`) —
/// the form the streaming HTTP endpoints page over chunk by chunk.
pub fn outcome_json_full(spec: &RunSpec, outcome: &Outcome, id: Option<&Json>) -> Json {
    let summary = payload_json(&outcome.payload);
    let mut members: Vec<(String, Json)> = summary
        .as_object()
        .map(|fields| fields.to_vec())
        .unwrap_or_default();
    members.push((
        "items_total".to_string(),
        Json::from(payload_item_count(&outcome.payload)),
    ));
    members.push((
        "items".to_string(),
        payload_items_json(&outcome.payload, 0, usize::MAX),
    ));
    let payload = Json::Object(members);
    with_id(outcome_members(spec, outcome, payload), id)
}

/// Renders a hexadecimal graph fingerprint the way every endpoint
/// spells it.
pub fn fingerprint_json(fingerprint: u64) -> Json {
    Json::from(format!("{fingerprint:#018x}"))
}

/// Renders a successful `add_edges` / `remove_edges` response: the
/// graph's new identity (fingerprint, base fingerprint, version), the
/// effective delta, and how the result cache fared.
pub fn mutation_json(graph: &str, outcome: &MutationOutcome, id: Option<&Json>) -> Json {
    with_id(
        vec![
            ("ok", Json::Bool(true)),
            ("graph", Json::from(graph)),
            ("fingerprint", fingerprint_json(outcome.fingerprint)),
            (
                "base_fingerprint",
                fingerprint_json(outcome.base_fingerprint),
            ),
            ("version", Json::from(outcome.version)),
            ("added", Json::from(outcome.added)),
            ("removed", Json::from(outcome.removed)),
            ("touched", Json::from(outcome.touched)),
            ("vertices", Json::from(outcome.vertices)),
            ("edges", Json::from(outcome.edges)),
            (
                "cache",
                Json::object([
                    ("survived", Json::from(outcome.cache.survived)),
                    ("refreshed", Json::from(outcome.cache.refreshed)),
                    ("invalidated", Json::from(outcome.cache.invalidated)),
                ]),
            ),
        ],
        id,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        for (line, control) in [
            (r#"{"op":"health"}"#, true),
            (r#"{"op":"kernels"}"#, true),
            (r#"{"op":"stats"}"#, true),
            (r#"{"op":"shutdown"}"#, true),
            (
                r#"{"op":"load","graph":"g","format":"metis","path":"/x"}"#,
                false,
            ),
            (
                r#"{"op":"load","graph":"g","format":"gcsr","path":"/x","compression":"gap"}"#,
                false,
            ),
            (
                r#"{"op":"run","kernel":"k-clique","graph":"g","params":{"k":3}}"#,
                false,
            ),
            (
                r#"{"op":"batch","requests":[{"kernel":"t","graph":"g"}]}"#,
                false,
            ),
        ] {
            let (request, _) = parse_request(line).unwrap();
            assert_eq!(request.is_control(), control, "{line}");
        }
    }

    #[test]
    fn run_params_convert_and_reject_non_scalars() {
        let (request, id) = parse_request(
            r#"{"op":"run","id":7,"kernel":"k-clique","graph":"g","params":{"k":5,"eps":0.5,"ordering":"adg","collect":true}}"#,
        )
        .unwrap();
        assert_eq!(id, Some(Json::Int(7)));
        let Request::Run(spec) = request else {
            panic!("expected run")
        };
        assert_eq!(spec.params.get_int("k", 0), 5);
        assert_eq!(spec.params.get_float("eps", 0.0), 0.5);
        assert_eq!(spec.params.get_str("ordering", ""), "adg");
        assert!(spec.params.get_bool("collect", false));

        let err = parse_request(r#"{"op":"run","kernel":"k","graph":"g","params":{"k":[1]}}"#)
            .unwrap_err();
        assert_eq!(err.0.code, ErrorCode::BadRequest);
    }

    #[test]
    fn malformed_lines_carry_typed_codes_and_recovered_ids() {
        let (err, id) = parse_request("{nope").unwrap_err();
        assert_eq!(err.code, ErrorCode::BadJson);
        assert!(id.is_none());

        let (err, id) = parse_request(r#"{"op":"warp","id":"x"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(id, Some(Json::Str("x".into())), "id survives a bad op");

        let (err, _) =
            parse_request(r#"{"op":"load","graph":"g","format":"xml","path":"p"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);

        let (err, _) =
            parse_request(r#"{"op":"load","graph":"g","format":"gcsr","data":"x"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest, "inline gcsr is rejected");

        let (err, _) = parse_request(
            r#"{"op":"load","graph":"g","format":"metis","path":"p","compression":"zip"}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest, "unknown compression");

        let (err, _) =
            parse_request(r#"{"op":"load","graph":"g","format":"metis","path":"a","data":"b"}"#)
                .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn fleet_error_vocabulary_renders_with_extra_members() {
        for (code, spelling) in [
            (ErrorCode::BackendUnavailable, "backend-unavailable"),
            (ErrorCode::Moved, "moved"),
            (ErrorCode::GraphNotFound, "graph-not-found"),
        ] {
            assert_eq!(code.as_str(), spelling);
        }
        let rendered = error_json_with(
            &WireError::new(ErrorCode::Moved, "graph \"g\" moved"),
            &[("addr", Json::from("127.0.0.1:7002"))],
            Some(&Json::Int(9)),
        );
        assert_eq!(
            rendered.render(),
            r#"{"v":1,"ok":false,"error":{"code":"moved","message":"graph \"g\" moved","retryable":true,"addr":"127.0.0.1:7002"},"id":9}"#
        );
    }

    #[test]
    fn error_and_outcome_rendering() {
        let rendered = error_json(
            &WireError::new(ErrorCode::QueueFull, "admission queue at capacity (4)"),
            Some(&Json::Int(3)),
        )
        .render();
        assert_eq!(
            rendered,
            r#"{"v":1,"ok":false,"error":{"code":"queue-full","message":"admission queue at capacity (4)","retryable":true},"id":3}"#
        );

        let spec = RunSpec {
            kernel: "triangle-count".into(),
            graph: "g".into(),
            params: Params::new(),
        };
        let outcome = Outcome::new("triangle-count", 12);
        let v = outcome_json(&spec, &outcome, None);
        assert_eq!(v.get("v"), Some(&Json::Int(1)), "responses are versioned");
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("patterns"), Some(&Json::Int(12)));
        assert_eq!(v.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(
            v.get("payload")
                .and_then(|p| p.get("type"))
                .and_then(Json::as_str),
            Some("none")
        );
    }

    #[test]
    fn envelope_members_parse_and_validate() {
        let env = parse_envelope(
            r#"{"v":1,"op":"run","id":4,"kernel":"t","graph":"g","deadline_ms":250,"client":"alice","weight":4}"#,
        )
        .unwrap();
        assert!(env.versioned);
        assert_eq!(env.deadline_ms, Some(250));
        assert_eq!(env.client.as_deref(), Some("alice"));
        assert_eq!(env.weight, 4);
        assert_eq!(env.id, Some(Json::Int(4)));

        // Version-less requests still parse (deprecation grace)...
        let legacy = parse_envelope(r#"{"op":"health"}"#).unwrap();
        assert!(!legacy.versioned);
        assert_eq!(legacy.weight, 1);
        assert!(legacy.deadline_ms.is_none());

        // ...but a *wrong* version, bad deadline, or bad weight is a
        // typed bad-request.
        for line in [
            r#"{"v":2,"op":"health"}"#,
            r#"{"v":"1","op":"health"}"#,
            r#"{"op":"health","deadline_ms":0}"#,
            r#"{"op":"health","deadline_ms":-5}"#,
            r#"{"op":"health","client":""}"#,
            r#"{"op":"health","weight":0}"#,
            r#"{"op":"health","weight":4096}"#,
        ] {
            let (err, _) = parse_envelope(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn api_errors_round_trip_and_classify() {
        assert!(ErrorCode::RateLimited.retryable());
        assert!(ErrorCode::DeadlineExceeded.retryable());
        assert!(!ErrorCode::PayloadTooLarge.retryable());
        assert_eq!(ErrorCode::RateLimited.http_status(), 429);
        assert_eq!(ErrorCode::PayloadTooLarge.http_status(), 413);
        assert_eq!(ErrorCode::DeadlineExceeded.http_status(), 504);
        assert_eq!(ErrorCode::Timeout.http_status(), 408);

        let original = ApiError::new(ErrorCode::Moved, "graph \"g\" moved")
            .with_detail("addr", Json::from("10.0.0.2:7002"));
        let parsed = ApiError::from_json(&error_object(&original, &[]));
        assert_eq!(parsed.code, ErrorCode::Moved);
        assert_eq!(parsed.message, original.message);
        assert_eq!(parsed.details.len(), 1);
        assert_eq!(parsed.details[0].0, "addr");
    }

    #[test]
    fn payload_items_page_cleanly() {
        let payload = Payload::VertexGroups(vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
        assert_eq!(payload_item_count(&payload), 3);
        let page = payload_items_json(&payload, 1, 1);
        assert_eq!(page.render(), "[[2,3]]");
        let tail = payload_items_json(&payload, 2, 10);
        assert_eq!(tail.render(), "[[4,5]]");
        let off_end = payload_items_json(&payload, 7, 10);
        assert_eq!(off_end.render(), "[]");
        let ranks = Payload::Rank(vec![5, 4, 3]);
        assert_eq!(payload_items_json(&ranks, 0, 2).render(), "[5,4]");
    }
}
