//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request is one JSON object on one line; the server answers
//! with exactly one JSON object on one line. Every request may carry
//! an `"id"` member (any scalar), echoed verbatim in the response so
//! clients that pipeline requests over one connection can match
//! answers to questions. The full format, endpoint by endpoint, is
//! documented in `crates/gms-serve/README.md`.
//!
//! Errors are typed: `{"ok":false,"error":{"code":...,"message":...}}`
//! with the closed set of codes in [`ErrorCode`]. `queue-full` is the
//! backpressure signal (the HTTP 429 analog): the request was parsed
//! but not admitted, and the client should retry later or slow down.

use crate::json::Json;
use gms_core::{Edge, NodeId};
use gms_platform::kernel::{KernelError, MutationOutcome, Outcome, Params, Payload, Value};

/// The closed set of error codes a response can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// Valid JSON, but not a well-formed request (unknown `op`,
    /// missing or mistyped members).
    BadRequest,
    /// The admission queue is at capacity; retry later (HTTP 429
    /// analog).
    QueueFull,
    /// No kernel registered under the requested name.
    UnknownKernel,
    /// A parameter name the kernel's schema does not declare.
    UnknownParam,
    /// A parameter with the wrong type or an inadmissible value.
    BadParam,
    /// No graph loaded under the requested name.
    UnknownGraph,
    /// Loading a graph failed (file missing, parse error, checksum
    /// mismatch, ...).
    Io,
    /// An edge-mutation batch was rejected (endpoint out of range —
    /// mutations cannot create vertices). The graph is untouched.
    BadMutation,
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
    /// Fleet vocabulary: the shard owning the requested graph is
    /// down and the request could not be served by a survivor.
    /// Retryable — the router keeps re-placing orphaned graphs.
    BackendUnavailable,
    /// Fleet vocabulary: the graph now lives on a different shard;
    /// the error object carries the new owner under `"addr"`. A
    /// client talking to the router can simply retry the request.
    Moved,
    /// Fleet vocabulary: the graph is not in the fleet-wide table
    /// (the router-level analog of a single process's
    /// `unknown-graph`).
    GraphNotFound,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::UnknownKernel => "unknown-kernel",
            ErrorCode::UnknownParam => "unknown-param",
            ErrorCode::BadParam => "bad-param",
            ErrorCode::UnknownGraph => "unknown-graph",
            ErrorCode::Io => "io-error",
            ErrorCode::BadMutation => "bad-mutation",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::BackendUnavailable => "backend-unavailable",
            ErrorCode::Moved => "moved",
            ErrorCode::GraphNotFound => "graph-not-found",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed wire-level failure: code plus human-readable message.
#[derive(Clone, Debug)]
pub struct WireError {
    /// Which of the closed error codes.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// Maps a kernel-API error onto the wire codes.
    pub fn from_kernel(e: &KernelError) -> Self {
        let code = match e {
            KernelError::UnknownKernel(_) => ErrorCode::UnknownKernel,
            KernelError::UnknownParam { .. } => ErrorCode::UnknownParam,
            KernelError::BadParam { .. } => ErrorCode::BadParam,
            KernelError::InvalidHandle => ErrorCode::UnknownGraph,
            KernelError::NotMaterialized => ErrorCode::BadRequest,
            KernelError::BadMutation { .. } => ErrorCode::BadMutation,
        };
        Self::new(code, e.to_string())
    }
}

/// On-disk / inline source of a graph to load.
#[derive(Clone, Debug)]
pub enum LoadSource {
    /// Load from a path on the server's filesystem.
    Path(String),
    /// Parse the graph text sent inline in the request.
    Data(String),
}

/// The graph formats the `load` endpoint accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadFormat {
    /// SNAP-style whitespace-separated edge list.
    EdgeList,
    /// METIS adjacency format.
    Metis,
    /// `.gcsr` binary CSR snapshot (path only — the binary format
    /// does not survive a JSON string).
    Gcsr,
}

impl LoadFormat {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "edge-list" => Some(LoadFormat::EdgeList),
            "metis" => Some(LoadFormat::Metis),
            "gcsr" => Some(LoadFormat::Gcsr),
            _ => None,
        }
    }
}

/// How a loaded graph is held resident, per the request's optional
/// `"compression"` member.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoadCompression {
    /// Raw CSR arrays (the default; also `"compression":"none"`).
    /// A v2 `.gcsr` file still loads compressed — the file's own
    /// encoding wins.
    #[default]
    None,
    /// `"compression":"gap"`: recompress into a gap+varint
    /// [`CompressedCsr`](gms_graph::CompressedCsr) after loading and
    /// serve kernels through the decode hot path. The fingerprint —
    /// and therefore the result cache — is unchanged.
    Gap,
}

impl LoadCompression {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(LoadCompression::None),
            "gap" => Some(LoadCompression::Gap),
            _ => None,
        }
    }
}

/// A parsed `load` request.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Server-side name to register the graph under; loading onto an
    /// existing name replaces that graph and invalidates its cached
    /// outcomes.
    pub name: String,
    /// Input format.
    pub format: LoadFormat,
    /// Where the bytes come from.
    pub source: LoadSource,
    /// Resident representation to hold the graph in.
    pub compression: LoadCompression,
}

/// A parsed `add_edges` / `remove_edges` request: one batched edge
/// mutation against a named graph. Set semantics — already-satisfied
/// requests are no-ops — so replaying a batch after a lost response
/// is safe (the client's idempotent-retry path uses this).
#[derive(Clone, Debug)]
pub struct MutateSpec {
    /// Server-side graph name.
    pub graph: String,
    /// Undirected edges to add.
    pub add: Vec<Edge>,
    /// Undirected edges to remove.
    pub remove: Vec<Edge>,
}

/// One kernel invocation inside a `run` or `batch` request.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Registered kernel name.
    pub kernel: String,
    /// Server-side graph name.
    pub graph: String,
    /// Parameter overrides.
    pub params: Params,
}

/// A fully parsed request.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness and capacity probe (answered inline).
    Health,
    /// Kernel listing with parameter schemas (answered inline).
    Kernels,
    /// Cache / server / graph statistics (answered inline).
    Stats,
    /// Graceful shutdown (acknowledged inline, then the server
    /// drains and exits).
    Shutdown,
    /// Load or replace a graph (admitted through the queue).
    Load(LoadSpec),
    /// Apply a batched edge mutation (admitted through the queue).
    Mutate(MutateSpec),
    /// Run one kernel (admitted through the queue).
    Run(RunSpec),
    /// Run several kernels as one admitted unit.
    Batch(Vec<RunSpec>),
}

impl Request {
    /// Control-plane requests are answered by the connection thread
    /// itself; data-plane requests go through admission control.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Request::Health | Request::Kernels | Request::Stats | Request::Shutdown
        )
    }
}

fn required_str(obj: &Json, key: &str, op: &str) -> Result<String, WireError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| {
            WireError::new(
                ErrorCode::BadRequest,
                format!("op {op:?} requires a string {key:?} member"),
            )
        })
}

/// Converts a JSON `params` object into typed kernel [`Params`].
/// Only scalar members are admissible; `null`, arrays and nested
/// objects are rejected up front.
pub fn params_from_json(value: &Json) -> Result<Params, WireError> {
    let Some(fields) = value.as_object() else {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            "\"params\" must be an object",
        ));
    };
    let mut params = Params::new();
    for (key, v) in fields {
        let value = match v {
            Json::Int(i) => Value::Int(*i),
            Json::Float(x) => Value::Float(*x),
            Json::Bool(b) => Value::Bool(*b),
            Json::Str(s) => Value::Str(s.clone()),
            _ => {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    format!("parameter {key:?} must be a scalar"),
                ))
            }
        };
        params.set(key, value);
    }
    Ok(params)
}

fn run_spec(obj: &Json, op: &str) -> Result<RunSpec, WireError> {
    let params = match obj.get("params") {
        None => Params::new(),
        Some(v) => params_from_json(v)?,
    };
    Ok(RunSpec {
        kernel: required_str(obj, "kernel", op)?,
        graph: required_str(obj, "graph", op)?,
        params,
    })
}

fn load_spec(obj: &Json) -> Result<LoadSpec, WireError> {
    let name = required_str(obj, "graph", "load")?;
    let format_name = required_str(obj, "format", "load")?;
    let format = LoadFormat::parse(&format_name).ok_or_else(|| {
        WireError::new(
            ErrorCode::BadRequest,
            format!("unknown format {format_name:?} (expected edge-list, metis, or gcsr)"),
        )
    })?;
    let source = match (obj.get("path"), obj.get("data")) {
        (Some(p), None) => LoadSource::Path(
            p.as_str()
                .ok_or_else(|| WireError::new(ErrorCode::BadRequest, "\"path\" must be a string"))?
                .to_string(),
        ),
        (None, Some(d)) => {
            if format == LoadFormat::Gcsr {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    "gcsr is a binary format: send a \"path\", not inline \"data\"",
                ));
            }
            LoadSource::Data(
                d.as_str()
                    .ok_or_else(|| {
                        WireError::new(ErrorCode::BadRequest, "\"data\" must be a string")
                    })?
                    .to_string(),
            )
        }
        _ => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                "op \"load\" requires exactly one of \"path\" or \"data\"",
            ))
        }
    };
    let compression = match obj.get("compression") {
        None => LoadCompression::default(),
        Some(v) => {
            let text = v.as_str().ok_or_else(|| {
                WireError::new(ErrorCode::BadRequest, "\"compression\" must be a string")
            })?;
            LoadCompression::parse(text).ok_or_else(|| {
                WireError::new(
                    ErrorCode::BadRequest,
                    format!("unknown compression {text:?} (expected none or gap)"),
                )
            })?
        }
    };
    Ok(LoadSpec {
        name,
        format,
        source,
        compression,
    })
}

/// Parses a JSON `edges` array — `[[u,v],...]` with `u32` endpoints —
/// as sent by `add_edges` / `remove_edges`.
fn edges_from_json(obj: &Json, op: &str) -> Result<Vec<Edge>, WireError> {
    let items = obj.get("edges").and_then(Json::as_array).ok_or_else(|| {
        WireError::new(
            ErrorCode::BadRequest,
            format!("op {op:?} requires an \"edges\" array of [u,v] pairs"),
        )
    })?;
    let endpoint = |v: &Json| -> Option<NodeId> {
        match v {
            Json::Int(i) if (0..=NodeId::MAX as i64).contains(i) => Some(*i as NodeId),
            _ => None,
        }
    };
    items
        .iter()
        .map(|item| {
            let pair = item.as_array().filter(|p| p.len() == 2);
            pair.and_then(|p| Some((endpoint(&p[0])?, endpoint(&p[1])?)))
                .ok_or_else(|| {
                    WireError::new(
                        ErrorCode::BadRequest,
                        format!(
                            "every edge of op {op:?} must be a [u,v] pair of non-negative integers"
                        ),
                    )
                })
        })
        .collect()
}

fn mutate_spec(obj: &Json, op: &str) -> Result<MutateSpec, WireError> {
    let graph = required_str(obj, "graph", op)?;
    let edges = edges_from_json(obj, op)?;
    let (add, remove) = if op == "add_edges" {
        (edges, Vec::new())
    } else {
        (Vec::new(), edges)
    };
    Ok(MutateSpec { graph, add, remove })
}

/// Parses one request line. On success returns the request plus the
/// echoed `id`; on failure the error still carries whatever `id`
/// could be recovered, so even malformed requests get a matchable
/// response.
#[allow(clippy::type_complexity)]
pub fn parse_request(line: &str) -> Result<(Request, Option<Json>), (WireError, Option<Json>)> {
    let value =
        Json::parse(line).map_err(|e| (WireError::new(ErrorCode::BadJson, e.to_string()), None))?;
    let id = value.get("id").cloned();
    let fail = |e: WireError| (e, id.clone());
    if value.as_object().is_none() {
        return Err(fail(WireError::new(
            ErrorCode::BadRequest,
            "a request is a JSON object",
        )));
    }
    let op = value.get("op").and_then(Json::as_str).ok_or_else(|| {
        fail(WireError::new(
            ErrorCode::BadRequest,
            "missing string \"op\"",
        ))
    })?;
    let request = match op {
        "health" => Request::Health,
        "kernels" => Request::Kernels,
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        "load" => Request::Load(load_spec(&value).map_err(&fail)?),
        "add_edges" | "remove_edges" => Request::Mutate(mutate_spec(&value, op).map_err(&fail)?),
        "run" => Request::Run(run_spec(&value, "run").map_err(&fail)?),
        "batch" => {
            let items = value
                .get("requests")
                .and_then(Json::as_array)
                .ok_or_else(|| {
                    fail(WireError::new(
                        ErrorCode::BadRequest,
                        "op \"batch\" requires a \"requests\" array",
                    ))
                })?;
            let specs = items
                .iter()
                .map(|item| run_spec(item, "batch"))
                .collect::<Result<Vec<_>, _>>()
                .map_err(&fail)?;
            Request::Batch(specs)
        }
        other => {
            return Err(fail(WireError::new(
                ErrorCode::BadRequest,
                format!("unknown op {other:?}"),
            )))
        }
    };
    Ok((request, id))
}

/// Assembles a response object, echoing the request's `id` (when one
/// was sent) as the last member — the one id-echo implementation
/// every response goes through (public so the `gms-router` front end
/// composes responses the same way).
pub fn with_id(mut fields: Vec<(&'static str, Json)>, id: Option<&Json>) -> Json {
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    Json::object(fields)
}

/// Renders a typed error response.
pub fn error_json(error: &WireError, id: Option<&Json>) -> Json {
    error_json_with(error, &[], id)
}

/// Renders a typed error response with extra members inside the
/// error object — how `moved` carries the new shard under `"addr"`.
pub fn error_json_with(error: &WireError, extra: &[(&str, Json)], id: Option<&Json>) -> Json {
    let mut members = vec![
        ("code", Json::from(error.code.as_str())),
        ("message", Json::from(error.message.clone())),
    ];
    for (key, value) in extra {
        members.push((key, value.clone()));
    }
    with_id(
        vec![("ok", Json::Bool(false)), ("error", Json::object(members))],
        id,
    )
}

fn payload_json(payload: &Payload) -> Json {
    match payload {
        Payload::None => Json::object([("type", Json::from("none"))]),
        Payload::VertexGroups(groups) => Json::object([
            ("type", Json::from("vertex-groups")),
            ("groups", Json::from(groups.len())),
        ]),
        Payload::Assignment(a) => Json::object([
            ("type", Json::from("assignment")),
            ("len", Json::from(a.len())),
        ]),
        Payload::Rank(r) => {
            Json::object([("type", Json::from("rank")), ("len", Json::from(r.len()))])
        }
        Payload::Scalar(x) => {
            Json::object([("type", Json::from("scalar")), ("value", Json::from(*x))])
        }
    }
}

/// Renders a successful `run` response (also one element of a
/// `batch` response's `results` array).
pub fn outcome_json(spec: &RunSpec, outcome: &Outcome, id: Option<&Json>) -> Json {
    with_id(
        vec![
            ("ok", Json::Bool(true)),
            ("kernel", Json::from(outcome.kernel)),
            ("graph", Json::from(spec.graph.clone())),
            ("patterns", Json::from(outcome.patterns)),
            ("cached", Json::from(outcome.cached)),
            (
                "kernel_ms",
                Json::from(outcome.timings.kernel.as_secs_f64() * 1e3),
            ),
            (
                "total_ms",
                Json::from(outcome.timings.total().as_secs_f64() * 1e3),
            ),
            ("payload", payload_json(&outcome.payload)),
        ],
        id,
    )
}

/// Renders a hexadecimal graph fingerprint the way every endpoint
/// spells it.
pub fn fingerprint_json(fingerprint: u64) -> Json {
    Json::from(format!("{fingerprint:#018x}"))
}

/// Renders a successful `add_edges` / `remove_edges` response: the
/// graph's new identity (fingerprint, base fingerprint, version), the
/// effective delta, and how the result cache fared.
pub fn mutation_json(graph: &str, outcome: &MutationOutcome, id: Option<&Json>) -> Json {
    with_id(
        vec![
            ("ok", Json::Bool(true)),
            ("graph", Json::from(graph)),
            ("fingerprint", fingerprint_json(outcome.fingerprint)),
            (
                "base_fingerprint",
                fingerprint_json(outcome.base_fingerprint),
            ),
            ("version", Json::from(outcome.version)),
            ("added", Json::from(outcome.added)),
            ("removed", Json::from(outcome.removed)),
            ("touched", Json::from(outcome.touched)),
            ("vertices", Json::from(outcome.vertices)),
            ("edges", Json::from(outcome.edges)),
            (
                "cache",
                Json::object([
                    ("survived", Json::from(outcome.cache.survived)),
                    ("refreshed", Json::from(outcome.cache.refreshed)),
                    ("invalidated", Json::from(outcome.cache.invalidated)),
                ]),
            ),
        ],
        id,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        for (line, control) in [
            (r#"{"op":"health"}"#, true),
            (r#"{"op":"kernels"}"#, true),
            (r#"{"op":"stats"}"#, true),
            (r#"{"op":"shutdown"}"#, true),
            (
                r#"{"op":"load","graph":"g","format":"metis","path":"/x"}"#,
                false,
            ),
            (
                r#"{"op":"load","graph":"g","format":"gcsr","path":"/x","compression":"gap"}"#,
                false,
            ),
            (
                r#"{"op":"run","kernel":"k-clique","graph":"g","params":{"k":3}}"#,
                false,
            ),
            (
                r#"{"op":"batch","requests":[{"kernel":"t","graph":"g"}]}"#,
                false,
            ),
        ] {
            let (request, _) = parse_request(line).unwrap();
            assert_eq!(request.is_control(), control, "{line}");
        }
    }

    #[test]
    fn run_params_convert_and_reject_non_scalars() {
        let (request, id) = parse_request(
            r#"{"op":"run","id":7,"kernel":"k-clique","graph":"g","params":{"k":5,"eps":0.5,"ordering":"adg","collect":true}}"#,
        )
        .unwrap();
        assert_eq!(id, Some(Json::Int(7)));
        let Request::Run(spec) = request else {
            panic!("expected run")
        };
        assert_eq!(spec.params.get_int("k", 0), 5);
        assert_eq!(spec.params.get_float("eps", 0.0), 0.5);
        assert_eq!(spec.params.get_str("ordering", ""), "adg");
        assert!(spec.params.get_bool("collect", false));

        let err = parse_request(r#"{"op":"run","kernel":"k","graph":"g","params":{"k":[1]}}"#)
            .unwrap_err();
        assert_eq!(err.0.code, ErrorCode::BadRequest);
    }

    #[test]
    fn malformed_lines_carry_typed_codes_and_recovered_ids() {
        let (err, id) = parse_request("{nope").unwrap_err();
        assert_eq!(err.code, ErrorCode::BadJson);
        assert!(id.is_none());

        let (err, id) = parse_request(r#"{"op":"warp","id":"x"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert_eq!(id, Some(Json::Str("x".into())), "id survives a bad op");

        let (err, _) =
            parse_request(r#"{"op":"load","graph":"g","format":"xml","path":"p"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);

        let (err, _) =
            parse_request(r#"{"op":"load","graph":"g","format":"gcsr","data":"x"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest, "inline gcsr is rejected");

        let (err, _) = parse_request(
            r#"{"op":"load","graph":"g","format":"metis","path":"p","compression":"zip"}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest, "unknown compression");

        let (err, _) =
            parse_request(r#"{"op":"load","graph":"g","format":"metis","path":"a","data":"b"}"#)
                .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn fleet_error_vocabulary_renders_with_extra_members() {
        for (code, spelling) in [
            (ErrorCode::BackendUnavailable, "backend-unavailable"),
            (ErrorCode::Moved, "moved"),
            (ErrorCode::GraphNotFound, "graph-not-found"),
        ] {
            assert_eq!(code.as_str(), spelling);
        }
        let rendered = error_json_with(
            &WireError::new(ErrorCode::Moved, "graph \"g\" moved"),
            &[("addr", Json::from("127.0.0.1:7002"))],
            Some(&Json::Int(9)),
        );
        assert_eq!(
            rendered.render(),
            r#"{"ok":false,"error":{"code":"moved","message":"graph \"g\" moved","addr":"127.0.0.1:7002"},"id":9}"#
        );
    }

    #[test]
    fn error_and_outcome_rendering() {
        let rendered = error_json(
            &WireError::new(ErrorCode::QueueFull, "admission queue at capacity (4)"),
            Some(&Json::Int(3)),
        )
        .render();
        assert_eq!(
            rendered,
            r#"{"ok":false,"error":{"code":"queue-full","message":"admission queue at capacity (4)"},"id":3}"#
        );

        let spec = RunSpec {
            kernel: "triangle-count".into(),
            graph: "g".into(),
            params: Params::new(),
        };
        let outcome = Outcome::new("triangle-count", 12);
        let v = outcome_json(&spec, &outcome, None);
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("patterns"), Some(&Json::Int(12)));
        assert_eq!(v.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(
            v.get("payload")
                .and_then(|p| p.get("type"))
                .and_then(Json::as_str),
            Some("none")
        );
    }
}
