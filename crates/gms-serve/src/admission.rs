//! Admission control: a bounded MPMC queue between the connection
//! threads (producers) and the worker sessions (consumers).
//!
//! The queue is the server's backpressure valve. Connection threads
//! *never block* on it: [`AdmissionQueue::try_submit_as`] either
//! admits the request or returns immediately with
//! [`SubmitError::Full`] (queue at capacity) or
//! [`SubmitError::RateLimited`] (that client's token bucket is
//! empty), which the wire layer turns into `queue-full` /
//! `rate-limited` error responses. Worker threads block on
//! [`AdmissionQueue::dequeue`] until work arrives or the queue is
//! closed; closing drains — jobs admitted before
//! [`AdmissionQueue::close`] are still handed out, so a graceful
//! shutdown answers everything it admitted.
//!
//! # Fairness (the v1 redesign)
//!
//! The pre-v1 queue was one global FIFO: a client flooding requests
//! starved everyone behind it, and a shed request left no trace of
//! *who* was shed. The queue is now a set of per-client sub-queues
//! served by **weighted round-robin**: each visit to a client serves
//! up to `weight` consecutive items before the cursor moves on, so
//! two saturating clients with weights 4 and 1 see their work
//! dequeued in a 4:1 ratio, and a heavy client can only ever delay —
//! not starve — a light one. Every client's admitted / served / shed
//! / rate-limited counts are tracked and surfaced through
//! [`AdmissionQueue::client_stats`] into the server's `stats`
//! endpoint.
//!
//! An optional per-client **token bucket** ([`RateLimit`]) caps
//! sustained request rate independently of queue capacity: capacity
//! protects the *server*, the rate limit protects *other clients*.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Bound on distinct per-client accounting entries. Clients beyond
/// the bound share the default (`""`) entry, so a client-name
/// cardinality attack cannot grow server memory.
const MAX_CLIENTS: usize = 1024;

/// A per-client token-bucket rate limit: `rate_per_sec` sustained
/// requests per second with bursts up to `burst`.
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Steady-state admissions per second per client.
    pub rate_per_sec: f64,
    /// Bucket capacity: how many requests may arrive back-to-back
    /// before the steady rate applies.
    pub burst: f64,
}

/// Why a submission was not admitted.
#[derive(Debug)]
pub enum SubmitError<T> {
    /// The queue is at capacity; the rejected item is handed back.
    Full(T),
    /// The submitting client's token bucket is empty; the rejected
    /// item is handed back. Other clients are unaffected.
    RateLimited(T),
    /// The queue was closed (server shutting down).
    Closed(T),
}

/// A point-in-time snapshot of one client's admission accounting.
#[derive(Clone, Debug)]
pub struct ClientStats {
    /// Client identity (`""` is the default / anonymous client).
    pub client: String,
    /// Current weighted-fair-queuing weight (the last one sent).
    pub weight: u32,
    /// Items waiting in this client's sub-queue right now.
    pub pending: usize,
    /// Total items admitted.
    pub admitted: u64,
    /// Total items handed to workers.
    pub served: u64,
    /// Total items rejected because the queue was at capacity — the
    /// record of *who* was shed that the FIFO design never kept.
    pub shed: u64,
    /// Total items rejected by this client's token bucket.
    pub rate_limited: u64,
}

struct ClientState<T> {
    name: String,
    weight: u32,
    items: VecDeque<T>,
    admitted: u64,
    served: u64,
    shed: u64,
    rate_limited: u64,
    tokens: f64,
    refilled: Instant,
}

impl<T> ClientState<T> {
    fn new(name: &str, burst: f64) -> Self {
        Self {
            name: name.to_string(),
            weight: 1,
            items: VecDeque::new(),
            admitted: 0,
            served: 0,
            shed: 0,
            rate_limited: 0,
            tokens: burst,
            refilled: Instant::now(),
        }
    }

    /// Refills by elapsed wall time, then tries to spend one token.
    fn take_token(&mut self, limit: &RateLimit) -> bool {
        let now = Instant::now();
        let elapsed = now.duration_since(self.refilled).as_secs_f64();
        self.refilled = now;
        self.tokens = (self.tokens + elapsed * limit.rate_per_sec).min(limit.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

struct Inner<T> {
    clients: Vec<ClientState<T>>,
    /// Index of the client the round-robin cursor is on.
    cursor: usize,
    /// How many more consecutive items the cursor's client may be
    /// served before the cursor moves on (reset to `weight` on
    /// arrival).
    quantum_left: u32,
    /// Total pending items across all sub-queues.
    len: usize,
    closed: bool,
}

impl<T> Inner<T> {
    /// Index of `client`'s accounting entry, creating it if the
    /// table has room; full tables fold new names into the default
    /// entry (index of `""`, itself created on demand).
    fn client_index(&mut self, client: &str, burst: f64) -> usize {
        if let Some(i) = self.clients.iter().position(|c| c.name == client) {
            return i;
        }
        if self.clients.len() >= MAX_CLIENTS {
            // Full table: fold the new name into the default entry,
            // creating it on demand — never push an attacker-chosen
            // name past the bound.
            if let Some(i) = self.clients.iter().position(|c| c.name.is_empty()) {
                return i;
            }
            self.clients.push(ClientState::new("", burst));
        } else {
            self.clients.push(ClientState::new(client, burst));
        }
        self.clients.len() - 1
    }

    /// Pops the next item under weighted round-robin. Caller
    /// guarantees `len > 0`.
    fn pop_weighted(&mut self) -> T {
        loop {
            let c = &mut self.clients[self.cursor];
            if self.quantum_left > 0 {
                if let Some(item) = c.items.pop_front() {
                    self.quantum_left -= 1;
                    self.len -= 1;
                    c.served += 1;
                    return item;
                }
            }
            self.cursor = (self.cursor + 1) % self.clients.len();
            self.quantum_left = self.clients[self.cursor].weight.max(1);
        }
    }
}

/// A bounded multi-producer / multi-consumer queue with non-blocking
/// submission, weighted-fair consumption, optional per-client rate
/// limits, and blocking, drain-on-close dequeue.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
    rate_limit: Option<RateLimit>,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` pending items, with no
    /// per-client rate limit.
    pub fn new(capacity: usize) -> Self {
        Self::with_rate_limit(capacity, None)
    }

    /// A queue admitting at most `capacity` pending items; when
    /// `rate_limit` is set, every client is additionally held to its
    /// own token bucket.
    pub fn with_rate_limit(capacity: usize, rate_limit: Option<RateLimit>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                clients: Vec::new(),
                cursor: 0,
                quantum_left: 1,
                len: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
            rate_limit,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits `item` for the default client at weight 1; never
    /// blocks. The pre-v1 entry point — NDJSON lines that carry no
    /// `"client"` member land here.
    pub fn try_submit(&self, item: T) -> Result<(), SubmitError<T>> {
        self.try_submit_as("", 1, item)
    }

    /// Admits `item` on `client`'s sub-queue at `weight`; never
    /// blocks. The weight sticks to the client (its last value
    /// wins), and a client's first rejection still creates its
    /// accounting entry — shed requests are attributed, not lost.
    pub fn try_submit_as(&self, client: &str, weight: u32, item: T) -> Result<(), SubmitError<T>> {
        let burst = self.rate_limit.map_or(0.0, |l| l.burst);
        let mut inner = self.lock();
        if inner.closed {
            return Err(SubmitError::Closed(item));
        }
        let index = inner.client_index(client, burst);
        inner.clients[index].weight = weight.max(1);
        // Capacity before the token bucket: a request shed on a full
        // queue must not also burn a rate-limit token — the work was
        // never admitted, so the client is not double-penalized.
        if inner.len >= self.capacity {
            inner.clients[index].shed += 1;
            return Err(SubmitError::Full(item));
        }
        if let Some(limit) = &self.rate_limit {
            if !inner.clients[index].take_token(limit) {
                inner.clients[index].rate_limited += 1;
                return Err(SubmitError::RateLimited(item));
            }
        }
        inner.clients[index].items.push_back(item);
        inner.clients[index].admitted += 1;
        inner.len += 1;
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and pops the next one under
    /// weighted round-robin. Returns `None` only when the queue is
    /// closed *and* drained.
    pub fn dequeue(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if inner.len > 0 {
                return Some(inner.pop_weighted());
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Rejects all future submissions and wakes every waiting
    /// consumer; already-admitted items are still dequeued.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently waiting, across all clients.
    pub fn depth(&self) -> usize {
        self.lock().len
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Per-client accounting, in first-seen order.
    pub fn client_stats(&self) -> Vec<ClientStats> {
        self.lock()
            .clients
            .iter()
            .map(|c| ClientStats {
                client: c.name.clone(),
                weight: c.weight,
                pending: c.items.len(),
                admitted: c.admitted,
                served: c.served,
                shed: c.shed,
                rate_limited: c.rate_limited,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_above_capacity_without_blocking() {
        let q = AdmissionQueue::new(2);
        q.try_submit(1).unwrap();
        q.try_submit(2).unwrap();
        assert!(matches!(q.try_submit(3), Err(SubmitError::Full(3))));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.dequeue(), Some(1));
        q.try_submit(3).unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = AdmissionQueue::new(4);
        q.try_submit("a").unwrap();
        q.try_submit("b").unwrap();
        q.close();
        assert!(matches!(q.try_submit("c"), Err(SubmitError::Closed("c"))));
        assert_eq!(q.dequeue(), Some("a"));
        assert_eq!(q.dequeue(), Some("b"));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn blocking_consumers_wake_on_submit_and_close() {
        let q = Arc::new(AdmissionQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.dequeue())
            })
            .collect();
        // Two get items, one is released by close.
        q.try_submit(10).unwrap();
        q.try_submit(20).unwrap();
        q.close();
        let mut got: Vec<_> = consumers.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, Some(10), Some(20)]);
    }

    #[test]
    fn weighted_round_robin_serves_four_to_one() {
        let q = AdmissionQueue::new(64);
        for i in 0..16 {
            q.try_submit_as("heavy", 4, ("heavy", i)).unwrap();
            q.try_submit_as("light", 1, ("light", i)).unwrap();
        }
        // Under saturation, the first 10 dequeues split 8:2 — the
        // ≥2:1 completed-request ratio the 4:1 weights promise.
        let first: Vec<_> = (0..10).map(|_| q.dequeue().unwrap().0).collect();
        let heavy = first.iter().filter(|&&c| c == "heavy").count();
        let light = first.iter().filter(|&&c| c == "light").count();
        assert_eq!(heavy + light, 10);
        assert!(
            heavy >= 2 * light,
            "4:1 weights must yield >= 2:1 service, got {heavy}:{light}"
        );
        // Nothing starves: draining the queue serves everything.
        let mut rest = 0;
        while q.depth() > 0 {
            q.dequeue().unwrap();
            rest += 1;
        }
        assert_eq!(rest, 22);
    }

    #[test]
    fn shed_requests_are_attributed_to_their_client() {
        let q = AdmissionQueue::new(1);
        q.try_submit_as("a", 1, 1).unwrap();
        assert!(matches!(
            q.try_submit_as("b", 1, 2),
            Err(SubmitError::Full(2))
        ));
        assert!(matches!(
            q.try_submit_as("b", 1, 3),
            Err(SubmitError::Full(3))
        ));
        let stats = q.client_stats();
        let a = stats.iter().find(|s| s.client == "a").unwrap();
        let b = stats.iter().find(|s| s.client == "b").unwrap();
        assert_eq!((a.admitted, a.shed), (1, 0));
        assert_eq!((b.admitted, b.shed), (0, 2), "shed is per-client now");
    }

    #[test]
    fn client_table_is_bounded_under_name_cardinality_attack() {
        let q = AdmissionQueue::new(2 * MAX_CLIENTS);
        let extra = 100;
        for i in 0..MAX_CLIENTS + extra {
            let name = format!("spoofed-{i}");
            q.try_submit_as(&name, 1, i).unwrap();
        }
        let stats = q.client_stats();
        assert!(
            stats.len() <= MAX_CLIENTS + 1,
            "unique names must not grow the table past the bound (+ the fold entry), got {}",
            stats.len()
        );
        // Overflow names all fold into the default entry...
        let fold = stats.iter().find(|s| s.client.is_empty()).unwrap();
        assert_eq!(fold.admitted, extra as u64);
        // ...and nothing was lost.
        let mut drained = 0;
        while q.depth() > 0 {
            q.dequeue().unwrap();
            drained += 1;
        }
        assert_eq!(drained, MAX_CLIENTS + extra);
    }

    #[test]
    fn full_queue_rejection_does_not_burn_a_token() {
        let q = AdmissionQueue::with_rate_limit(
            1,
            Some(RateLimit {
                rate_per_sec: 1e-9,
                burst: 2.0,
            }),
        );
        q.try_submit_as("c", 1, 1).unwrap(); // one token spent
        assert!(matches!(
            q.try_submit_as("c", 1, 2),
            Err(SubmitError::Full(2))
        ));
        assert_eq!(q.dequeue(), Some(1));
        // The full-queue rejection must not have cost the second
        // token: this admission succeeds, and only then is the
        // bucket empty.
        q.try_submit_as("c", 1, 3).unwrap();
        assert_eq!(q.dequeue(), Some(3));
        assert!(matches!(
            q.try_submit_as("c", 1, 4),
            Err(SubmitError::RateLimited(4))
        ));
    }

    #[test]
    fn token_bucket_limits_one_client_not_the_other() {
        // A near-zero refill rate makes the test deterministic: each
        // client gets exactly `burst` admissions.
        let q = AdmissionQueue::with_rate_limit(
            64,
            Some(RateLimit {
                rate_per_sec: 1e-9,
                burst: 2.0,
            }),
        );
        q.try_submit_as("greedy", 1, 1).unwrap();
        q.try_submit_as("greedy", 1, 2).unwrap();
        assert!(matches!(
            q.try_submit_as("greedy", 1, 3),
            Err(SubmitError::RateLimited(3))
        ));
        // An unrelated client still has its own full bucket.
        q.try_submit_as("polite", 1, 4).unwrap();
        let stats = q.client_stats();
        let greedy = stats.iter().find(|s| s.client == "greedy").unwrap();
        assert_eq!(greedy.rate_limited, 1);
        assert_eq!(greedy.admitted, 2);
    }
}
