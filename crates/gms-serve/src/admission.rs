//! Admission control: a bounded MPMC queue between the connection
//! threads (producers) and the worker sessions (consumers).
//!
//! The queue is the server's backpressure valve. Connection threads
//! *never block* on it: [`AdmissionQueue::try_submit`] either admits
//! the request or returns [`SubmitError::Full`] immediately, which
//! the wire layer turns into a `queue-full` error response — the
//! HTTP 429 of the newline-delimited protocol. Worker threads block
//! on [`AdmissionQueue::dequeue`] until work arrives or the queue is
//! closed; closing drains — jobs admitted before
//! [`AdmissionQueue::close`] are still handed out, so a graceful
//! shutdown answers everything it admitted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a submission was not admitted.
#[derive(Debug)]
pub enum SubmitError<T> {
    /// The queue is at capacity; the rejected item is handed back.
    Full(T),
    /// The queue was closed (server shutting down).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer / multi-consumer FIFO with non-blocking
/// submission and blocking, drain-on-close consumption.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` pending items.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits `item` if there is room; never blocks.
    pub fn try_submit(&self, item: T) -> Result<(), SubmitError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(SubmitError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(SubmitError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and pops it. Returns `None`
    /// only when the queue is closed *and* drained.
    pub fn dequeue(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Rejects all future submissions and wakes every waiting
    /// consumer; already-admitted items are still dequeued.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently waiting.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_above_capacity_without_blocking() {
        let q = AdmissionQueue::new(2);
        q.try_submit(1).unwrap();
        q.try_submit(2).unwrap();
        assert!(matches!(q.try_submit(3), Err(SubmitError::Full(3))));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.dequeue(), Some(1));
        q.try_submit(3).unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = AdmissionQueue::new(4);
        q.try_submit("a").unwrap();
        q.try_submit("b").unwrap();
        q.close();
        assert!(matches!(q.try_submit("c"), Err(SubmitError::Closed("c"))));
        assert_eq!(q.dequeue(), Some("a"));
        assert_eq!(q.dequeue(), Some("b"));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn blocking_consumers_wake_on_submit_and_close() {
        let q = Arc::new(AdmissionQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.dequeue())
            })
            .collect();
        // Two get items, one is released by close.
        q.try_submit(10).unwrap();
        q.try_submit(20).unwrap();
        q.close();
        let mut got: Vec<_> = consumers.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, Some(10), Some(20)]);
    }
}
