//! The `gms-serve` binary: bind, print the bound address, serve
//! until a client sends `{"op":"shutdown"}`.
//!
//! Flags (each also readable from the environment):
//!
//! | flag | env | default | meaning |
//! |---|---|---|---|
//! | `--addr` | `GMS_SERVE_ADDR` | `127.0.0.1:0` | bind address (port 0 = ephemeral) |
//! | `--workers` | `GMS_SERVE_WORKERS` | 2 | worker sessions |
//! | `--queue` | `GMS_SERVE_QUEUE` | 64 | admission-queue capacity |
//! | `--cache` | `GMS_SERVE_CACHE` | 256 | result-cache capacity |
//! | `--rate-limit` | `GMS_SERVE_RATE_LIMIT` | off | per-client token bucket as `rate/burst` (e.g. `100/20` = 100 req/s, burst 20) |
//! | `--max-body-bytes` | `GMS_SERVE_MAX_BODY` | 8388608 | largest inline request body; bigger is `payload-too-large` (HTTP 413) |
//! | `--request-timeout-ms` | `GMS_SERVE_REQUEST_TIMEOUT_MS` | 5000 | slow-loris guard: max time to deliver one complete request |
//! | `--addr-file` | `GMS_SERVE_ADDR_FILE` | — | write the bound address to this file (CI reads the ephemeral port from it) |

use gms_serve::{RateLimit, ServeConfig, Server};
use std::time::Duration;

fn arg_or_env(args: &[String], flag: &str, env: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var(env).ok())
}

fn parse_or<T: std::str::FromStr>(value: Option<String>, default: T, flag: &str) -> T {
    match value {
        None => default,
        Some(text) => text.parse().unwrap_or_else(|_| {
            eprintln!("gms-serve: unparsable value {text:?} for {flag}");
            std::process::exit(2);
        }),
    }
}

fn parse_rate_limit(text: &str) -> RateLimit {
    let parsed = text.split_once('/').and_then(|(rate, burst)| {
        Some(RateLimit {
            rate_per_sec: rate.parse().ok().filter(|&r: &f64| r > 0.0)?,
            burst: burst.parse().ok().filter(|&b: &f64| b >= 1.0)?,
        })
    });
    parsed.unwrap_or_else(|| {
        eprintln!("gms-serve: --rate-limit expects \"rate/burst\" (e.g. 100/20), got {text:?}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = ServeConfig {
        addr: arg_or_env(&args, "--addr", "GMS_SERVE_ADDR")
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        workers: parse_or(
            arg_or_env(&args, "--workers", "GMS_SERVE_WORKERS"),
            2,
            "--workers",
        ),
        queue_capacity: parse_or(
            arg_or_env(&args, "--queue", "GMS_SERVE_QUEUE"),
            64,
            "--queue",
        ),
        cache_capacity: parse_or(
            arg_or_env(&args, "--cache", "GMS_SERVE_CACHE"),
            256,
            "--cache",
        ),
        rate_limit: arg_or_env(&args, "--rate-limit", "GMS_SERVE_RATE_LIMIT")
            .map(|text| parse_rate_limit(&text)),
        max_body_bytes: parse_or(
            arg_or_env(&args, "--max-body-bytes", "GMS_SERVE_MAX_BODY"),
            8 * 1024 * 1024,
            "--max-body-bytes",
        ),
        request_timeout: Duration::from_millis(parse_or(
            arg_or_env(
                &args,
                "--request-timeout-ms",
                "GMS_SERVE_REQUEST_TIMEOUT_MS",
            ),
            5000,
            "--request-timeout-ms",
        )),
    };
    let addr_file = arg_or_env(&args, "--addr-file", "GMS_SERVE_ADDR_FILE");

    let handle = Server::start(config).unwrap_or_else(|e| {
        eprintln!("gms-serve: failed to start: {e}");
        std::process::exit(1);
    });
    println!("gms-serve listening on {}", handle.addr());
    // Line-buffered stdout may sit on the banner otherwise.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = addr_file {
        if let Err(e) = std::fs::write(&path, handle.addr().to_string()) {
            eprintln!("gms-serve: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
    }
    // Serve until a client drives a graceful shutdown over the wire.
    handle.join();
    println!("gms-serve: shut down cleanly");
}
