//! The `gms-serve` binary: bind, print the bound address, serve
//! until a client sends `{"op":"shutdown"}`.
//!
//! Flags (each also readable from the environment):
//!
//! | flag | env | default | meaning |
//! |---|---|---|---|
//! | `--addr` | `GMS_SERVE_ADDR` | `127.0.0.1:0` | bind address (port 0 = ephemeral) |
//! | `--workers` | `GMS_SERVE_WORKERS` | 2 | worker sessions |
//! | `--queue` | `GMS_SERVE_QUEUE` | 64 | admission-queue capacity |
//! | `--cache` | `GMS_SERVE_CACHE` | 256 | result-cache capacity |
//! | `--addr-file` | `GMS_SERVE_ADDR_FILE` | — | write the bound address to this file (CI reads the ephemeral port from it) |

use gms_serve::{ServeConfig, Server};

fn arg_or_env(args: &[String], flag: &str, env: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var(env).ok())
}

fn parse_or<T: std::str::FromStr>(value: Option<String>, default: T, flag: &str) -> T {
    match value {
        None => default,
        Some(text) => text.parse().unwrap_or_else(|_| {
            eprintln!("gms-serve: unparsable value {text:?} for {flag}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = ServeConfig {
        addr: arg_or_env(&args, "--addr", "GMS_SERVE_ADDR")
            .unwrap_or_else(|| "127.0.0.1:0".to_string()),
        workers: parse_or(
            arg_or_env(&args, "--workers", "GMS_SERVE_WORKERS"),
            2,
            "--workers",
        ),
        queue_capacity: parse_or(
            arg_or_env(&args, "--queue", "GMS_SERVE_QUEUE"),
            64,
            "--queue",
        ),
        cache_capacity: parse_or(
            arg_or_env(&args, "--cache", "GMS_SERVE_CACHE"),
            256,
            "--cache",
        ),
    };
    let addr_file = arg_or_env(&args, "--addr-file", "GMS_SERVE_ADDR_FILE");

    let handle = Server::start(config).unwrap_or_else(|e| {
        eprintln!("gms-serve: failed to start: {e}");
        std::process::exit(1);
    });
    println!("gms-serve listening on {}", handle.addr());
    // Line-buffered stdout may sit on the banner otherwise.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = addr_file {
        if let Err(e) = std::fs::write(&path, handle.addr().to_string()) {
            eprintln!("gms-serve: cannot write {path:?}: {e}");
            std::process::exit(1);
        }
    }
    // Serve until a client drives a graceful shutdown over the wire.
    handle.join();
    println!("gms-serve: shut down cleanly");
}
