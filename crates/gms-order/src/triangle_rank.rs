//! Triangle-count ranking (§4.1.3): orders vertices by the number of
//! triangles they participate in (their local clustering mass). The
//! paper lists it as a preprocessing-capable ordering; it also
//! provides the per-vertex triangle counts and `T`-skew statistics
//! used to characterize datasets (Table 7).

use gms_core::{CsrGraph, Graph, NodeId};
use gms_graph::{orient_by_rank, Rank};
use rayon::prelude::*;

/// Per-vertex triangle participation counts, computed with the
/// rank-merge scheme on a degree-oriented DAG: every triangle is found
/// exactly once and credited to all three corners.
pub fn triangles_per_vertex(graph: &CsrGraph) -> Vec<u64> {
    let rank = crate::degree::degree_order(graph);
    let dag = orient_by_rank(graph, &rank);
    let n = graph.num_vertices();
    let counts: Vec<std::sync::atomic::AtomicU64> = (0..n)
        .map(|_| std::sync::atomic::AtomicU64::new(0))
        .collect();
    (0..n as NodeId).into_par_iter().for_each(|u| {
        let nu = dag.neighbors_slice(u);
        for &v in nu {
            let nv = dag.neighbors_slice(v);
            // Merge-intersect N+(u) with N+(v): any common w closes the
            // triangle u→v, u→w, v→w exactly once (ranks force the
            // orientation u < v < w).
            let (mut a, mut b) = (0usize, 0usize);
            while a < nu.len() && b < nv.len() {
                match nu[a].cmp(&nv[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        let w = nu[a];
                        for x in [u, v, w] {
                            counts[x as usize].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    });
    counts.into_iter().map(|c| c.into_inner()).collect()
}

/// Total triangle count `T`.
pub fn triangle_count(graph: &CsrGraph) -> u64 {
    triangles_per_vertex(graph).iter().sum::<u64>() / 3
}

/// Orders vertices by ascending triangle count (ties by ID) — the
/// clustering-coefficient-style ranking of Table 4.
pub fn triangle_count_order(graph: &CsrGraph) -> Rank {
    let triangles = triangles_per_vertex(graph);
    let mut vertices: Vec<NodeId> = graph.vertices().collect();
    vertices.par_sort_unstable_by_key(|&v| (triangles[v as usize], v));
    Rank::from_order(&vertices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_in_known_graph() {
        // One triangle (0,1,2) + tail.
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(triangles_per_vertex(&g), vec![1, 1, 1, 0]);
        assert_eq!(triangle_count(&g), 1);
    }

    #[test]
    fn complete_graph_counts() {
        // K6: C(6,3) = 20 triangles; each vertex is in C(5,2) = 10.
        let g = gms_gen::complete(6);
        assert_eq!(triangle_count(&g), 20);
        assert!(triangles_per_vertex(&g).iter().all(|&t| t == 10));
    }

    #[test]
    fn grid_has_no_triangles() {
        let g = gms_gen::grid(10, 10);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn ordering_puts_triangle_rich_vertices_last() {
        // K4 on {0..3} plus a triangle-free star at 4.
        let mut edges = vec![(4u32, 5u32), (4, 6), (4, 7)];
        for i in 0..4u32 {
            for j in i + 1..4 {
                edges.push((i, j));
            }
        }
        let g = CsrGraph::from_undirected_edges(8, &edges);
        let rank = triangle_count_order(&g);
        for star in 4..8u32 {
            for clique in 0..4u32 {
                assert!(rank.precedes(star, clique), "{star} before {clique}");
            }
        }
    }

    #[test]
    fn matches_brute_force_on_random_graph() {
        let g = gms_gen::gnp(60, 0.2, 17);
        let mut brute = 0u64;
        for u in 0..60u32 {
            for v in u + 1..60 {
                for w in v + 1..60 {
                    if g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(triangle_count(&g), brute);
    }
}
