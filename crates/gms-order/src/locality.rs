//! Locality-oriented orderings (§B.2 relabelings): BFS order (the
//! classic bandwidth-reducing relabeling — neighbors get nearby IDs,
//! shrinking the gaps that gap/varint encodings store) and a seeded
//! random order (the adversarial baseline for compression and cache
//! experiments).

use gms_core::{CsrGraph, Graph, NodeId};
use gms_graph::Rank;
use std::collections::VecDeque;

/// BFS traversal order from `seed`, visiting remaining components in
/// vertex-ID order. Neighbors receive consecutive ranks, which
/// minimizes encoded gap sizes after relabeling.
pub fn bfs_order(graph: &CsrGraph, seed: NodeId) -> Rank {
    let n = graph.num_vertices();
    assert!((seed as usize) < n || n == 0);
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    let enqueue = |v: NodeId, visited: &mut [bool], queue: &mut VecDeque<NodeId>| {
        if !visited[v as usize] {
            visited[v as usize] = true;
            queue.push_back(v);
        }
    };
    if n > 0 {
        enqueue(seed, &mut visited, &mut queue);
    }
    let mut next_start = 0 as NodeId;
    while order.len() < n {
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for w in graph.neighbors(v) {
                enqueue(w, &mut visited, &mut queue);
            }
        }
        // Next unvisited component.
        while (next_start as usize) < n && visited[next_start as usize] {
            next_start += 1;
        }
        if (next_start as usize) < n {
            enqueue(next_start, &mut visited, &mut queue);
        }
    }
    Rank::from_order(&order)
}

/// A seeded pseudo-random permutation (Fisher–Yates over an LCG) —
/// the locality-destroying baseline.
pub fn random_order(n: usize, seed: u64) -> Rank {
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 16) as usize % (i + 1);
        order.swap(i, j);
    }
    Rank::from_order(&order)
}

/// Sum of varint-encoded gap bytes over all neighborhoods after
/// applying `rank` — the §B.2 compression objective the locality
/// orderings optimize.
pub fn encoded_gap_bytes(graph: &CsrGraph, rank: &Rank) -> usize {
    let relabeled = gms_graph::relabel(graph, rank);
    (0..relabeled.num_vertices() as NodeId)
        .map(|v| {
            let neigh = relabeled.neighbors_slice(v);
            let mut bytes = 0usize;
            let mut prev = 0u32;
            for (i, &w) in neigh.iter().enumerate() {
                let gap = if i == 0 { w } else { w - prev };
                bytes += varint_len(gap);
                prev = w;
            }
            bytes
        })
        .sum()
}

fn varint_len(v: u32) -> usize {
    match v {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0x0FFF_FFFF => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_order_is_a_permutation_and_layered() {
        let g = gms_gen::grid(8, 8);
        let rank = bfs_order(&g, 0);
        assert_eq!(rank.len(), 64);
        // The seed is first; its neighbors come before far vertices.
        assert_eq!(rank.rank_of(0), 0);
        assert!(rank.rank_of(1) < rank.rank_of(63));
        assert!(rank.rank_of(8) < rank.rank_of(63));
    }

    #[test]
    fn bfs_covers_disconnected_graphs() {
        let g = CsrGraph::from_undirected_edges(6, &[(0, 1), (3, 4)]);
        let rank = bfs_order(&g, 3);
        assert_eq!(rank.len(), 6);
        assert_eq!(rank.rank_of(3), 0);
        assert_eq!(rank.rank_of(4), 1);
    }

    #[test]
    fn random_order_is_seeded_permutation() {
        let a = random_order(500, 9);
        let b = random_order(500, 9);
        assert_eq!(a, b);
        assert_ne!(a, random_order(500, 10));
    }

    #[test]
    fn bfs_relabeling_compresses_better_than_random() {
        // On a locality-rich mesh, BFS relabeling must shrink the
        // varint-gap encoding vs a random permutation.
        let g = gms_gen::grid(30, 30);
        let bfs_bytes = encoded_gap_bytes(&g, &bfs_order(&g, 0));
        let rnd_bytes = encoded_gap_bytes(&g, &random_order(900, 3));
        assert!(
            (bfs_bytes as f64) < 0.8 * rnd_bytes as f64,
            "bfs {bfs_bytes} vs random {rnd_bytes}"
        );
    }
}
