//! Degree ordering (DEG, §4.1.3): a straightforward parallel sort of
//! vertices by degree. The paper includes it as the simple reordering
//! baseline that "was shown to bring speedups" — cheap to compute but
//! with a weaker effect on Bron–Kerbosch than degeneracy orders.

use gms_core::{CsrGraph, Graph, NodeId};
use gms_graph::Rank;
use rayon::prelude::*;

/// Ascending-degree ordering (ties broken by vertex ID). Used as the
/// outer-loop processing order of clique algorithms: low-degree
/// vertices first keeps candidate sets small early.
pub fn degree_order(graph: &CsrGraph) -> Rank {
    let mut vertices: Vec<NodeId> = graph.vertices().collect();
    vertices.par_sort_unstable_by_key(|&v| (graph.degree(v), v));
    Rank::from_order(&vertices)
}

/// Descending-degree ordering ("degree-minimizing" relabeling of
/// Log(Graph): hubs get small IDs, shrinking encoded gaps).
pub fn degree_order_desc(graph: &CsrGraph) -> Rank {
    let mut vertices: Vec<NodeId> = graph.vertices().collect();
    vertices.par_sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    Rank::from_order(&vertices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_plus_edge() -> CsrGraph {
        // 0 is a hub of degree 4; 5-6 an isolated edge.
        CsrGraph::from_undirected_edges(7, &[(0, 1), (0, 2), (0, 3), (0, 4), (5, 6)])
    }

    #[test]
    fn ascending_puts_hub_last() {
        let g = star_plus_edge();
        let rank = degree_order(&g);
        assert_eq!(rank.rank_of(0), 6);
        // Degree-1 vertices precede the hub.
        for v in 1..7 {
            assert!(rank.precedes(v, 0));
        }
    }

    #[test]
    fn descending_puts_hub_first() {
        let g = star_plus_edge();
        let rank = degree_order_desc(&g);
        assert_eq!(rank.rank_of(0), 0);
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let g = CsrGraph::from_undirected_edges(4, &[(0, 1), (2, 3)]);
        let rank = degree_order(&g);
        assert_eq!(rank.order(), vec![0, 1, 2, 3]);
    }
}
