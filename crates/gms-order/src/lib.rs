//! # gms-order
//!
//! Vertex reorderings — the preprocessing stage (③) of the GMS
//! pipeline. Reorderings reduce the work of the downstream mining
//! kernel: the degeneracy order bounds Bron–Kerbosch candidate sets,
//! degree ordering avoids redundant triangle counting, and so on.
//!
//! * [`degree::degree_order`] — simple parallel degree sort (DEG);
//! * [`degeneracy::degeneracy_order`] — exact smallest-last peeling
//!   (DGR) with core numbers, O(n + m);
//! * [`adg::approx_degeneracy_order`] — the paper's
//!   (2+ε)-approximate degeneracy order (ADG, Algorithm 5) with
//!   O(log n) parallel rounds — the key enabler of the BK-ADG and
//!   KC-ADG algorithms;
//! * [`kcore`] — exact and approximate k-core decomposition;
//! * [`triangle_rank`] — triangle counts and triangle-count ordering.

#![warn(missing_docs)]

pub mod adg;
pub mod degeneracy;
pub mod degree;
pub mod kcore;
pub mod locality;
pub mod triangle_rank;

pub use adg::{approx_degeneracy_order, ApproxDegeneracy};
pub use degeneracy::{degeneracy_order, later_neighbor_bound, Degeneracy};
pub use degree::{degree_order, degree_order_desc};
pub use kcore::{approx_core_numbers, k_core_by_peeling, k_core_vertices};
pub use locality::{bfs_order, encoded_gap_bytes, random_order};
pub use triangle_rank::{triangle_count, triangle_count_order, triangles_per_vertex};

use gms_core::CsrGraph;
use gms_graph::Rank;

/// The orderings available as preprocessing routines, as selectable
/// configuration (pipeline stage ③ takes one of these).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OrderingKind {
    /// Natural vertex-ID order (no preprocessing).
    Natural,
    /// Ascending degree (DEG).
    Degree,
    /// Exact degeneracy / smallest-last (DGR).
    Degeneracy,
    /// (2+ε)-approximate degeneracy (ADG) with the given ε.
    ApproxDegeneracy(f64),
    /// Ascending triangle count.
    TriangleCount,
}

impl OrderingKind {
    /// Computes the ordering on `graph` — the "single function call"
    /// preprocessing entry point the paper describes.
    pub fn compute(&self, graph: &CsrGraph) -> Rank {
        match *self {
            OrderingKind::Natural => Rank::identity(graph_len(graph)),
            OrderingKind::Degree => degree_order(graph),
            OrderingKind::Degeneracy => degeneracy_order(graph).rank,
            OrderingKind::ApproxDegeneracy(eps) => approx_degeneracy_order(graph, eps).rank,
            OrderingKind::TriangleCount => triangle_count_order(graph),
        }
    }

    /// Short label for reports and benchmark tables.
    pub fn label(&self) -> String {
        match self {
            OrderingKind::Natural => "NAT".to_string(),
            OrderingKind::Degree => "DEG".to_string(),
            OrderingKind::Degeneracy => "DGR".to_string(),
            OrderingKind::ApproxDegeneracy(eps) => format!("ADG(ε={eps})"),
            OrderingKind::TriangleCount => "TRI".to_string(),
        }
    }
}

fn graph_len(graph: &CsrGraph) -> usize {
    use gms_core::Graph as _;
    graph.num_vertices()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_compute_valid_permutations() {
        let g = gms_gen::gnp(120, 0.05, 2);
        for kind in [
            OrderingKind::Natural,
            OrderingKind::Degree,
            OrderingKind::Degeneracy,
            OrderingKind::ApproxDegeneracy(0.1),
            OrderingKind::TriangleCount,
        ] {
            let rank = kind.compute(&g);
            assert_eq!(rank.len(), 120, "{}", kind.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            OrderingKind::Natural,
            OrderingKind::Degree,
            OrderingKind::Degeneracy,
            OrderingKind::ApproxDegeneracy(0.1),
            OrderingKind::TriangleCount,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        let unique: std::collections::HashSet<&String> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }
}
