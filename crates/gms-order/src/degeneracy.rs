//! Exact degeneracy ordering (DGR, §6.1): the Matula–Beck smallest-
//! last peeling. Repeatedly removing a minimum-degree vertex yields an
//! ordering in which every vertex has at most `d` (the degeneracy)
//! neighbors ranked later — the property that bounds the candidate set
//! `P` in Bron–Kerbosch and the out-degree after orientation.
//!
//! The bucket-queue implementation runs in O(n + m) but is inherently
//! sequential (`O(n)` iterations even in parallel — the motivation for
//! the approximate order in [`crate::adg`]).

use gms_core::{CsrGraph, Graph, NodeId};
use gms_graph::Rank;

/// Result of the exact degeneracy peeling.
#[derive(Clone, Debug)]
pub struct Degeneracy {
    /// The degeneracy ordering (peeling order).
    pub rank: Rank,
    /// The graph degeneracy `d`.
    pub degeneracy: usize,
    /// Core number of every vertex (the largest `k` such that the
    /// vertex survives in the `k`-core).
    pub core_numbers: Vec<u32>,
}

/// Computes the exact degeneracy ordering with an O(n + m) bucket queue.
pub fn degeneracy_order(graph: &CsrGraph) -> Degeneracy {
    let n = graph.num_vertices();
    let mut degree: Vec<usize> = (0..n).map(|v| graph.degree(v as NodeId)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket queue: vertices grouped by current degree, with a
    // position index enabling O(1) moves between buckets.
    let mut bucket_of: Vec<usize> = degree.clone();
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_degree + 1];
    let mut position: Vec<usize> = vec![0; n];
    for v in 0..n {
        position[v] = buckets[degree[v]].len();
        buckets[degree[v]].push(v as NodeId);
    }

    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut removed = vec![false; n];
    let mut core_numbers = vec![0u32; n];
    let mut degeneracy = 0usize;
    let mut current = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket. `current` only needs to
        // back up by one per removal, keeping the scan O(n + m) total.
        while current <= max_degree && buckets[current].is_empty() {
            current += 1;
        }
        let v = buckets[current].pop().expect("non-empty bucket");
        removed[v as usize] = true;
        degeneracy = degeneracy.max(current);
        core_numbers[v as usize] = degeneracy as u32;
        order.push(v);
        for w in graph.neighbors(v) {
            let w = w as usize;
            if removed[w] {
                continue;
            }
            // Move w down one bucket.
            let b = bucket_of[w];
            let pos = position[w];
            let last = buckets[b].pop().expect("w's bucket non-empty");
            if last != w as NodeId {
                buckets[b][pos] = last;
                position[last as usize] = pos;
            }
            bucket_of[w] = b - 1;
            position[w] = buckets[b - 1].len();
            buckets[b - 1].push(w as NodeId);
            degree[w] -= 1;
            if b - 1 < current {
                current = b - 1;
            }
        }
    }
    Degeneracy {
        rank: Rank::from_order(&order),
        degeneracy,
        core_numbers,
    }
}

/// Checks the degeneracy-order invariant: every vertex has at most
/// `bound` neighbors ranked later. Used by tests and the concurrency-
/// analysis experiments (Table 5).
pub fn later_neighbor_bound(graph: &CsrGraph, rank: &Rank) -> usize {
    graph
        .vertices()
        .map(|v| graph.neighbors(v).filter(|&w| rank.precedes(v, w)).count())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_has_degeneracy_one() {
        let g = CsrGraph::from_undirected_edges(6, &[(0, 1), (1, 2), (1, 3), (3, 4), (3, 5)]);
        let result = degeneracy_order(&g);
        assert_eq!(result.degeneracy, 1);
        assert_eq!(later_neighbor_bound(&g, &result.rank), 1);
    }

    #[test]
    fn clique_has_degeneracy_k_minus_one() {
        let g = gms_gen::complete(6);
        let result = degeneracy_order(&g);
        assert_eq!(result.degeneracy, 5);
        assert!(result.core_numbers.iter().all(|&c| c == 5));
    }

    #[test]
    fn clique_plus_tail() {
        // K4 (0-3) with a pendant path 3-4-5.
        let mut edges = vec![(3u32, 4u32), (4, 5)];
        for i in 0..4u32 {
            for j in i + 1..4 {
                edges.push((i, j));
            }
        }
        let g = CsrGraph::from_undirected_edges(6, &edges);
        let result = degeneracy_order(&g);
        assert_eq!(result.degeneracy, 3);
        // Pendant vertices peel first at core 1.
        assert_eq!(result.core_numbers[5], 1);
        assert_eq!(result.core_numbers[4], 1);
        for v in 0..4 {
            assert_eq!(result.core_numbers[v], 3, "clique member {v}");
        }
        assert!(later_neighbor_bound(&g, &result.rank) <= 3);
    }

    #[test]
    fn invariant_on_random_graph() {
        let g = gms_gen::gnp(300, 0.05, 13);
        let result = degeneracy_order(&g);
        assert_eq!(
            later_neighbor_bound(&g, &result.rank),
            result.degeneracy,
            "the peeling order achieves its own bound"
        );
    }

    #[test]
    fn core_numbers_monotone_under_peel() {
        let g = gms_gen::gnp(200, 0.05, 3);
        let result = degeneracy_order(&g);
        // Core numbers never exceed degree.
        for v in g.vertices() {
            assert!(result.core_numbers[v as usize] as usize <= g.degree(v));
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_undirected_edges(0, &[]);
        let result = degeneracy_order(&g);
        assert_eq!(result.degeneracy, 0);
        assert!(result.rank.is_empty());
    }
}
