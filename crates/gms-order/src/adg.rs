//! (2+ε)-approximate degeneracy ordering (ADG, §6.1, Algorithm 5).
//!
//! The exact peeling removes one vertex per step (O(n) parallel
//! iterations); ADG instead removes a *batch* per round: all vertices
//! whose degree in the surviving subgraph `U` is at most `(1+ε)·δ̂_U`,
//! where `δ̂_U` is the average degree of `U`. At least an ε/(2+2ε)
//! fraction of `U` leaves every round, so there are O(log n) rounds
//! for any ε > 0 (Lemma 7.1: O(m) work, O(log² n) depth), and every
//! vertex has at most `(2+ε)·d` neighbors ranked later.

use gms_core::{CsrGraph, Graph, NodeId};
use gms_graph::Rank;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of the approximate degeneracy computation.
#[derive(Clone, Debug)]
pub struct ApproxDegeneracy {
    /// The ADG ordering: vertices sorted by (round, vertex ID).
    pub rank: Rank,
    /// Round in which each vertex was removed (the `η` priorities of
    /// Algorithm 5).
    pub round_of: Vec<u32>,
    /// Number of rounds — O(log n) for any fixed ε (checked in the
    /// Table 5 experiments).
    pub rounds: usize,
    /// The resulting later-neighbor bound, `max_v |{w ∈ N(v) :
    /// rank(w) > rank(v)}|`; at most `(2+ε)·d` by construction.
    pub out_degree_bound: usize,
}

/// Computes the (2+ε)-approximate degeneracy order (Algorithm 5).
///
/// # Panics
/// Panics if `epsilon` is negative (ε = 0 no longer guarantees
/// O(log n) rounds).
pub fn approx_degeneracy_order(graph: &CsrGraph, epsilon: f64) -> ApproxDegeneracy {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let n = graph.num_vertices();
    let degrees: Vec<AtomicU32> = (0..n)
        .map(|v| AtomicU32::new(graph.degree(v as NodeId) as u32))
        .collect();
    let mut alive: Vec<NodeId> = (0..n as NodeId).collect();
    let mut round_of = vec![0u32; n];
    let mut round = 0u32;

    while !alive.is_empty() {
        // δ̂_U: average degree of the surviving subgraph, computed by a
        // parallel reduction (the paper divides both sides by two; the
        // factor cancels in the comparison).
        let degree_sum: u64 = alive
            .par_iter()
            .map(|&v| u64::from(degrees[v as usize].load(Ordering::Relaxed)))
            .sum();
        let threshold = (1.0 + epsilon) * (degree_sum as f64 / alive.len() as f64);

        // R: the batch removed this round (Line 7). All comparisons use
        // the snapshot degrees, so the partition is deterministic.
        let (removed, survivors): (Vec<NodeId>, Vec<NodeId>) = alive
            .par_iter()
            .partition(|&&v| f64::from(degrees[v as usize].load(Ordering::Relaxed)) <= threshold);

        // Batch degree update: decrement surviving neighbors of every
        // removed vertex (conflict-free via atomics).
        removed.par_iter().for_each(|&v| {
            for w in graph.neighbors(v) {
                degrees[w as usize].fetch_sub(1, Ordering::Relaxed);
            }
        });
        // Note: decrements also hit removed vertices' counters; they are
        // never read again, so no correction is needed.

        for &v in &removed {
            round_of[v as usize] = round;
        }
        alive = survivors;
        round += 1;
        debug_assert!(round as usize <= n + 1, "ADG failed to make progress");
    }

    // η: sort by (round, id) — vertices removed earlier come first.
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.par_sort_unstable_by_key(|&v| (round_of[v as usize], v));
    let rank = Rank::from_order(&order);
    let out_degree_bound = crate::degeneracy::later_neighbor_bound(graph, &rank);
    ApproxDegeneracy {
        rank,
        round_of,
        rounds: round as usize,
        out_degree_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degeneracy::degeneracy_order;

    #[test]
    fn approximation_bound_holds() {
        for seed in 0..3 {
            let g = gms_gen::gnp(400, 0.03, seed);
            let exact = degeneracy_order(&g);
            for eps in [0.01, 0.1, 0.5, 1.0] {
                let approx = approx_degeneracy_order(&g, eps);
                let bound = ((2.0 + eps) * exact.degeneracy as f64).ceil() as usize;
                assert!(
                    approx.out_degree_bound <= bound.max(1),
                    "seed {seed} eps {eps}: {} > (2+ε)d = {bound}",
                    approx.out_degree_bound
                );
            }
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        // Rounds should grow like log n, not n.
        let small = gms_gen::gnp(250, 0.04, 1);
        let large = gms_gen::gnp(2000, 0.005, 1);
        let r_small = approx_degeneracy_order(&small, 0.1).rounds;
        let r_large = approx_degeneracy_order(&large, 0.1).rounds;
        assert!(r_small <= 40, "rounds {r_small}");
        assert!(r_large <= 60, "rounds {r_large}");
        // And far below n.
        assert!(r_large < large.num_vertices() / 10);
    }

    #[test]
    fn pendant_path_peels_before_clique() {
        // K5 + path: the path has low degree and must be ranked before
        // most of the clique interior.
        let mut edges = vec![(4u32, 5u32), (5, 6), (6, 7)];
        for i in 0..5u32 {
            for j in i + 1..5 {
                edges.push((i, j));
            }
        }
        let g = CsrGraph::from_undirected_edges(8, &edges);
        let adg = approx_degeneracy_order(&g, 0.1);
        // Path tail (7, degree 1) leaves in the first round.
        assert_eq!(adg.round_of[7], 0);
        assert!(adg.out_degree_bound <= ((2.0 + 0.1) * 4.0) as usize);
    }

    #[test]
    fn deterministic() {
        let g = gms_gen::kronecker_default(9, 8, 2);
        let a = approx_degeneracy_order(&g, 0.25);
        let b = approx_degeneracy_order(&g, 0.25);
        assert_eq!(a.rank, b.rank);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let empty = CsrGraph::from_undirected_edges(0, &[]);
        assert_eq!(approx_degeneracy_order(&empty, 0.1).rounds, 0);
        let isolated = CsrGraph::from_undirected_edges(5, &[]);
        let adg = approx_degeneracy_order(&isolated, 0.1);
        assert_eq!(adg.rounds, 1, "all isolated vertices leave in round 0");
        assert_eq!(adg.out_degree_bound, 0);
    }

    #[test]
    fn smaller_epsilon_tightens_the_bound() {
        let g = gms_gen::kronecker_default(10, 12, 4);
        let tight = approx_degeneracy_order(&g, 0.01).out_degree_bound;
        let loose = approx_degeneracy_order(&g, 2.0).out_degree_bound;
        assert!(tight <= loose, "tight {tight} loose {loose}");
    }
}
