//! k-core extraction (§6.1): a k-core is a maximal subgraph in which
//! every vertex has degree at least `k`. The paper derives k-cores
//! directly from a degeneracy ordering: orient the graph by the order
//! and iteratively remove vertices of insufficient degree.

use crate::degeneracy::degeneracy_order;
use gms_core::{CsrGraph, Graph, NodeId};

/// Vertices of the `k`-core, computed exactly from core numbers.
pub fn k_core_vertices(graph: &CsrGraph, k: u32) -> Vec<NodeId> {
    let result = degeneracy_order(graph);
    graph
        .vertices()
        .filter(|&v| result.core_numbers[v as usize] >= k)
        .collect()
}

/// Iterative peeling restricted to a target `k` (the paper's recipe:
/// repeatedly delete vertices with fewer than `k` surviving
/// neighbors). Equivalent to [`k_core_vertices`] but does not need
/// core numbers; the *approximate* core below applies the same peel
/// incrementally across geometric thresholds.
pub fn k_core_by_peeling(graph: &CsrGraph, k: u32) -> Vec<NodeId> {
    let n = graph.num_vertices();
    let mut degree: Vec<u32> = (0..n).map(|v| graph.degree(v as NodeId) as u32).collect();
    let mut removed = vec![false; n];
    let mut stack: Vec<NodeId> = graph
        .vertices()
        .filter(|&v| degree[v as usize] < k)
        .collect();
    for &v in &stack {
        removed[v as usize] = true;
    }
    while let Some(v) = stack.pop() {
        for w in graph.neighbors(v) {
            if removed[w as usize] {
                continue;
            }
            degree[w as usize] -= 1;
            if degree[w as usize] < k {
                removed[w as usize] = true;
                stack.push(w);
            }
        }
    }
    graph.vertices().filter(|&v| !removed[v as usize]).collect()
}

/// Approximate core decomposition by geometric thresholding (the
/// paper's approximate `k`-core recipe): peel to the `⌈k⌉`-core for
/// `k = 1, (1+ε), (1+ε)², ...` — O(log_{1+ε} Δ) peels instead of one
/// per distinct core value — and assign each vertex the largest
/// threshold it survives. The estimate never exceeds the true core
/// number and is within a `1+ε` factor below it (so trivially within
/// the `2+ε` factor the ADG theory promises). `ε = 0` degenerates to
/// testing every integer threshold, i.e. the exact core numbers.
///
/// Cores are nested, so each peel continues from the previous one's
/// survivors and residual degrees instead of rescanning the whole
/// graph: every vertex is peeled exactly once across all thresholds,
/// for O(n log_{1+ε} Δ + m) total work.
pub fn approx_core_numbers(graph: &CsrGraph, epsilon: f64) -> Vec<f64> {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let n = graph.num_vertices();
    let mut core = vec![0f64; n];
    let max_degree = graph.vertices().map(|v| graph.degree(v)).max().unwrap_or(0) as u32;
    let mut degree: Vec<u32> = (0..n).map(|v| graph.degree(v as NodeId) as u32).collect();
    let mut removed = vec![false; n];
    let mut survivors: Vec<NodeId> = graph.vertices().collect();
    let mut threshold = 1f64;
    let mut k = 1u32;
    while k <= max_degree {
        // Peel the previous core's survivors down to the k-core.
        let mut stack: Vec<NodeId> = survivors
            .iter()
            .copied()
            .filter(|&v| degree[v as usize] < k)
            .collect();
        for &v in &stack {
            removed[v as usize] = true;
        }
        while let Some(v) = stack.pop() {
            for w in graph.neighbors(v) {
                if removed[w as usize] {
                    continue;
                }
                degree[w as usize] -= 1;
                if degree[w as usize] < k {
                    removed[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        survivors.retain(|&v| !removed[v as usize]);
        if survivors.is_empty() {
            break;
        }
        for &v in &survivors {
            core[v as usize] = f64::from(k);
        }
        // Next distinct integer threshold: the geometric step, but at
        // least k + 1 so tiny ε (or ε = 0) still makes progress and
        // the loop is bounded by the number of distinct cores tested.
        threshold *= 1.0 + epsilon;
        k = (threshold.ceil() as u32).max(k + 1);
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_with_tail() -> CsrGraph {
        // K4 on {0..3}, path 3-4-5.
        let mut edges = vec![(3u32, 4u32), (4, 5)];
        for i in 0..4u32 {
            for j in i + 1..4 {
                edges.push((i, j));
            }
        }
        CsrGraph::from_undirected_edges(6, &edges)
    }

    #[test]
    fn three_core_is_the_clique() {
        let g = clique_with_tail();
        assert_eq!(k_core_vertices(&g, 3), vec![0, 1, 2, 3]);
        assert_eq!(k_core_by_peeling(&g, 3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn one_core_is_everything_connected() {
        let g = clique_with_tail();
        assert_eq!(k_core_vertices(&g, 1).len(), 6);
        assert_eq!(k_core_by_peeling(&g, 1).len(), 6);
    }

    #[test]
    fn too_large_k_is_empty() {
        let g = clique_with_tail();
        assert!(k_core_vertices(&g, 4).is_empty());
        assert!(k_core_by_peeling(&g, 4).is_empty());
    }

    #[test]
    fn peeling_matches_core_numbers_on_random_graphs() {
        for seed in 0..4 {
            let g = gms_gen::gnp(150, 0.06, seed);
            for k in 1..6 {
                assert_eq!(
                    k_core_by_peeling(&g, k),
                    k_core_vertices(&g, k),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn approx_core_within_factor() {
        let eps = 0.5;
        let g = gms_gen::gnp(200, 0.08, 5);
        let exact = degeneracy_order(&g);
        let approx = approx_core_numbers(&g, eps);
        for v in g.vertices() {
            let truth = f64::from(exact.core_numbers[v as usize]);
            let est = approx[v as usize];
            // The construction's two-sided contract: never above the
            // true core number, never more than a (1+ε) factor below
            // it (and so trivially within the ADG (2+ε) bound).
            assert!(est <= truth, "v {v}: est {est} exceeds core {truth}");
            assert!(
                est >= truth / (1.0 + eps) - 1e-9,
                "v {v}: est {est} more than (1+ε) below core {truth}"
            );
        }
    }

    #[test]
    fn epsilon_zero_gives_exact_cores() {
        let g = gms_gen::gnp(120, 0.07, 9);
        let exact = degeneracy_order(&g);
        let approx = approx_core_numbers(&g, 0.0);
        for v in g.vertices() {
            assert_eq!(
                approx[v as usize] as u32, exact.core_numbers[v as usize],
                "v {v}"
            );
        }
    }

    #[test]
    fn approx_core_matches_full_repeeling() {
        // The incremental survivors-only peel must agree with peeling
        // the whole graph at every tested threshold.
        for (seed, eps) in [(1u64, 0.5f64), (2, 0.25), (3, 1.0)] {
            let g = gms_gen::gnp(150, 0.06, seed);
            let approx = approx_core_numbers(&g, eps);
            for v in g.vertices() {
                let est = approx[v as usize] as u32;
                if est > 0 {
                    assert!(
                        k_core_by_peeling(&g, est).contains(&v),
                        "seed {seed} ε {eps}: v {v} assigned {est} but not in that core"
                    );
                }
            }
        }
    }
}
