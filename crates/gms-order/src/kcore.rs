//! k-core extraction (§6.1): a k-core is a maximal subgraph in which
//! every vertex has degree at least `k`. The paper derives k-cores
//! directly from a degeneracy ordering: orient the graph by the order
//! and iteratively remove vertices of insufficient degree.

use crate::adg::approx_degeneracy_order;
use crate::degeneracy::degeneracy_order;
use gms_core::{CsrGraph, Graph, NodeId};

/// Vertices of the `k`-core, computed exactly from core numbers.
pub fn k_core_vertices(graph: &CsrGraph, k: u32) -> Vec<NodeId> {
    let result = degeneracy_order(graph);
    graph
        .vertices()
        .filter(|&v| result.core_numbers[v as usize] >= k)
        .collect()
}

/// Iterative peeling restricted to a target `k` (the paper's recipe:
/// repeatedly delete vertices with fewer than `k` surviving
/// neighbors). Equivalent to [`k_core_vertices`] but does not need
/// core numbers; also the building block for the *approximate* core
/// below.
pub fn k_core_by_peeling(graph: &CsrGraph, k: u32) -> Vec<NodeId> {
    let n = graph.num_vertices();
    let mut degree: Vec<u32> = (0..n).map(|v| graph.degree(v as NodeId) as u32).collect();
    let mut removed = vec![false; n];
    let mut stack: Vec<NodeId> = graph.vertices().filter(|&v| degree[v as usize] < k).collect();
    for &v in &stack {
        removed[v as usize] = true;
    }
    while let Some(v) = stack.pop() {
        for w in graph.neighbors(v) {
            if removed[w as usize] {
                continue;
            }
            degree[w as usize] -= 1;
            if degree[w as usize] < k {
                removed[w as usize] = true;
                stack.push(w);
            }
        }
    }
    graph.vertices().filter(|&v| !removed[v as usize]).collect()
}

/// Approximate core decomposition from ADG (the paper's approximate
/// `k`-core algorithm, §4.1/§A): vertex `v` is assigned the round-
/// based pseudo-coreness `(1+ε)`-scaled; the guarantee is that the
/// true core number is within a `2+ε` factor.
pub fn approx_core_numbers(graph: &CsrGraph, epsilon: f64) -> Vec<f64> {
    let adg = approx_degeneracy_order(graph, epsilon);
    let n = graph.num_vertices();
    // Pseudo-coreness of a vertex = max over its prefix of the batch
    // threshold at its removal round. Reconstruct thresholds by
    // replaying rounds over the recorded round assignment.
    let mut degree: Vec<i64> = (0..n).map(|v| graph.degree(v as NodeId) as i64).collect();
    let rounds = adg.rounds;
    let mut by_round: Vec<Vec<NodeId>> = vec![Vec::new(); rounds];
    for v in 0..n {
        by_round[adg.round_of[v] as usize].push(v as NodeId);
    }
    let mut alive = n as i64;
    let mut degree_sum: i64 = degree.iter().sum();
    let mut core = vec![0f64; n];
    let mut running_max = 0f64;
    for batch in by_round.iter() {
        let avg = if alive > 0 { degree_sum as f64 / alive as f64 } else { 0.0 };
        running_max = running_max.max(avg * (1.0 + epsilon) / 2.0);
        for &v in batch {
            core[v as usize] = running_max;
        }
        // Update the degree sum: an edge from the batch to a survivor
        // loses both its endpoints' contributions (one on each side);
        // a batch-internal edge was counted twice in `removed_deg` and
        // must not be subtracted twice more.
        let removed_deg: i64 = batch.iter().map(|&v| degree[v as usize]).sum();
        let in_batch: std::collections::HashSet<NodeId> = batch.iter().copied().collect();
        let internal: i64 = batch
            .iter()
            .map(|&v| graph.neighbors(v).filter(|w| in_batch.contains(w)).count() as i64)
            .sum();
        degree_sum -= 2 * removed_deg - internal;
        for &v in batch {
            for w in graph.neighbors(v) {
                degree[w as usize] -= 1;
            }
            degree[v as usize] = 0;
        }
        alive -= batch.len() as i64;
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_with_tail() -> CsrGraph {
        // K4 on {0..3}, path 3-4-5.
        let mut edges = vec![(3u32, 4u32), (4, 5)];
        for i in 0..4u32 {
            for j in i + 1..4 {
                edges.push((i, j));
            }
        }
        CsrGraph::from_undirected_edges(6, &edges)
    }

    #[test]
    fn three_core_is_the_clique() {
        let g = clique_with_tail();
        assert_eq!(k_core_vertices(&g, 3), vec![0, 1, 2, 3]);
        assert_eq!(k_core_by_peeling(&g, 3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn one_core_is_everything_connected() {
        let g = clique_with_tail();
        assert_eq!(k_core_vertices(&g, 1).len(), 6);
        assert_eq!(k_core_by_peeling(&g, 1).len(), 6);
    }

    #[test]
    fn too_large_k_is_empty() {
        let g = clique_with_tail();
        assert!(k_core_vertices(&g, 4).is_empty());
        assert!(k_core_by_peeling(&g, 4).is_empty());
    }

    #[test]
    fn peeling_matches_core_numbers_on_random_graphs() {
        for seed in 0..4 {
            let g = gms_gen::gnp(150, 0.06, seed);
            for k in 1..6 {
                assert_eq!(
                    k_core_by_peeling(&g, k),
                    k_core_vertices(&g, k),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn approx_core_within_factor() {
        let g = gms_gen::gnp(200, 0.08, 5);
        let exact = degeneracy_order(&g);
        let approx = approx_core_numbers(&g, 0.5);
        for v in g.vertices() {
            let truth = f64::from(exact.core_numbers[v as usize]);
            let est = approx[v as usize];
            if truth > 0.0 {
                assert!(
                    est <= (2.0 + 0.5) * truth + 1.0,
                    "v {v}: est {est} too large vs core {truth}"
                );
            }
        }
    }
}
